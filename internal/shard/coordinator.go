package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard/client"
)

// Config tunes a Coordinator. The zero value is ready to use.
type Config struct {
	// Client configures every replica endpoint (bounded connection
	// pool, per-attempt timeout, idempotent-read retries). See package
	// client.
	Client client.Config
	// ShardTimeout bounds one shard group's whole query — primary,
	// hedge, and failover attempts together. A group that produces no
	// answer inside the bound yields a typed partial-result error
	// instead of holding the merge hostage. 0 means 5s.
	ShardTimeout time.Duration
	// HedgeDelay is how long the primary replica gets before a backup
	// request is fired at the next replica of the group (first success
	// wins, the loser's context is cancelled). 0 means 20ms; negative
	// disables hedging (failover on error still applies). Tail-latency
	// tuning: set it near the shard's p95 so ~5% of queries hedge.
	HedgeDelay time.Duration
	// ProbeInterval is how often every replica's /v1/healthz/ready is
	// polled in the background; replicas that answer not-ready (a node
	// still replaying its WAL, a draining node) are moved to the back
	// of the fan-out order until they recover. 0 means 2s; negative
	// disables active probing (passive marking on request failures
	// still applies).
	ProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.ShardTimeout == 0 {
		c.ShardTimeout = 5 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 20 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	return c
}

// pendingWrite is one mutation a diverged replica still owes. Exactly
// one of insert/del is set.
type pendingWrite struct {
	insert       []core.Record
	del          []uint64
	delMissingOK bool
}

// replica is one onionserve node inside a shard group.
type replica struct {
	ep    *client.Endpoint
	ready atomic.Bool

	// Divergence state. A replica that failed a write the group acked
	// holds stale data: it is pulled out of the read rotation entirely
	// (not merely deprioritized like a not-ready replica — a stale
	// answer merged into the ranking would be silently wrong, which is
	// worse than slow) and the missed writes queue up here until a
	// resync drains them in order.
	mu       sync.Mutex
	diverged bool
	draining bool
	pending  []pendingWrite
}

func (r *replica) isDiverged() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.diverged
}

// divergeOn marks the replica diverged and queues the write it missed.
// Reports whether this call is what flipped it (for the metric; a
// replica already diverged just grows its queue). Re-asserting diverged
// under the same lock as the append closes the race with a concurrent
// resync: if a drain just emptied the queue and cleared the flag, the
// new debt re-opens it and the replica stays out of rotation.
func (r *replica) divergeOn(pw pendingWrite) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	was := r.diverged
	r.diverged = true
	r.pending = append(r.pending, pw)
	return !was
}

// group is one shard: a set of replicas all serving the same slice of
// the corpus.
type group struct {
	replicas []*replica
	next     atomic.Uint64 // round-robin cursor for primary selection
}

// order returns the replicas in fan-out order: ready replicas first,
// rotated by the round-robin cursor so load spreads across them, then
// not-ready replicas as a last resort (they may have recovered since
// the last probe; trying them is still better than failing the shard).
// Diverged replicas are excluded outright — never even as a last
// resort: they hold data older than an acked mutation, and a merge
// over stale data is a wrong answer, not a degraded one.
func (g *group) order() []*replica {
	n := len(g.replicas)
	start := int(g.next.Add(1)-1) % n
	ready := make([]*replica, 0, n)
	var rest []*replica
	for i := 0; i < n; i++ {
		r := g.replicas[(start+i)%n]
		if r.isDiverged() {
			continue
		}
		if r.ready.Load() {
			ready = append(ready, r)
		} else {
			rest = append(rest, r)
		}
	}
	return append(ready, rest...)
}

// Coordinator fans linear optimization queries out to shard groups and
// merges their rankings into the exact single-node answer (see the
// package comment for the argument). Writes are routed to the owning
// shard. Safe for concurrent use; Close stops the probe loop.
type Coordinator struct {
	part    Partitioner
	groups  []*group
	cfg     Config
	metrics *metrics

	stopOnce sync.Once
	stop     chan struct{}
	probed   sync.WaitGroup
}

// New builds a coordinator over one endpoint list per shard:
// endpoints[g] are the replica base URLs of shard g. The partitioner's
// shard count must match len(endpoints) — queries would still be
// correct under a mismatch (queries visit every group), but writes
// would route into the void.
func New(part Partitioner, endpoints [][]string, cfg Config) (*Coordinator, error) {
	if part.NumShards() != len(endpoints) {
		return nil, fmt.Errorf("shard: partitioner has %d shards, %d endpoint groups given", part.NumShards(), len(endpoints))
	}
	cfg = cfg.withDefaults()
	groups := make([]*group, len(endpoints))
	for gi, reps := range endpoints {
		if len(reps) == 0 {
			return nil, fmt.Errorf("shard: group %d has no replicas", gi)
		}
		g := &group{replicas: make([]*replica, len(reps))}
		for ri, base := range reps {
			r := &replica{ep: client.New(base, cfg.Client)}
			r.ready.Store(true) // optimistic until a probe or failure says otherwise
			g.replicas[ri] = r
		}
		groups[gi] = g
	}
	c := &Coordinator{
		part:    part,
		groups:  groups,
		cfg:     cfg,
		metrics: newMetrics(len(groups)),
		stop:    make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		c.probed.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background readiness prober. In-flight fan-outs are
// unaffected (they carry their own contexts).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probed.Wait()
}

// probeLoop polls every replica's readiness endpoint, concurrently per
// tick so one black-holed replica's timeout doesn't delay the rest.
func (c *Coordinator) probeLoop() {
	defer c.probed.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, g := range c.groups {
			for _, r := range g.replicas {
				wg.Add(1)
				go func(r *replica) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
					defer cancel()
					ok := r.ep.Ready(ctx)
					r.ready.Store(ok)
					c.metrics.probesPerformed.Add(1)
					if !ok {
						c.metrics.replicasNotReady.Add(1)
						return
					}
					// A live probe on a diverged replica doubles as the
					// resync trigger: replay its missed writes in order and
					// put it back into rotation once the queue drains.
					if r.isDiverged() {
						c.drainReplica(ctx, r)
					}
				}(r)
			}
		}
		wg.Wait()
	}
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.groups) }

// GroupReady reports whether shard group g currently has at least one
// replica believed ready. A diverged replica does not count: it is out
// of the read rotation until it resyncs.
func (c *Coordinator) GroupReady(g int) bool {
	for _, r := range c.groups[g].replicas {
		if r.ready.Load() && !r.isDiverged() {
			return true
		}
	}
	return false
}

// Ready reports whether every shard group has a ready replica — the
// coordinator's own readiness condition: with any group dark, exact
// answers are impossible.
func (c *Coordinator) Ready() bool {
	for g := range c.groups {
		if !c.GroupReady(g) {
			return false
		}
	}
	return true
}

// PartialError reports the shard groups that produced no answer for a
// fan-out. The merged result over the responding shards is still
// returned alongside it — exact over the shards that answered, and a
// superset-free subset of the true answer — so a caller that opted
// into partial results can use it, and one that didn't can surface a
// typed failure naming the shards.
type PartialError struct {
	// Failed holds one entry per dark shard group.
	Failed []ShardError
}

// ShardError is one shard group's terminal failure.
type ShardError struct {
	Shard int
	Err   error
}

func (e *PartialError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = fmt.Sprintf("shard %d: %v", f.Shard, f.Err)
	}
	return fmt.Sprintf("shard: partial result, %d shard group(s) failed (%s)",
		len(e.Failed), strings.Join(parts, "; "))
}

// Shards returns the failed shard indexes, ascending.
func (e *PartialError) Shards() []int {
	out := make([]int, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f.Shard
	}
	sort.Ints(out)
	return out
}

// TopNResult is one merged fan-out.
type TopNResult struct {
	// Results is the merged ranking — with no failed shards, bit-
	// identical (IDs, score bits, order) to a single-node index over
	// the union corpus. Layer is the shard-local layer (see merge.go).
	Results []core.Result
	// Stats sums the work counters of every responding shard.
	Stats core.Stats
	// Failed lists shard groups that contributed nothing (also carried
	// by the accompanying *PartialError when non-empty).
	Failed []int
}

// TopN fans one query out to every shard group (hedged within each
// group) and merges. When some — but not all — groups fail, it returns
// the merge over the survivors together with a *PartialError; when
// every group fails, it returns a nil result and an error describing
// the first failure.
func (c *Coordinator) TopN(ctx context.Context, weights []float64, n int) (*TopNResult, error) {
	return c.TopNFiltered(ctx, weights, n, nil)
}

// TopNFiltered is TopN with range predicates pushed down to every
// shard. Exactness needs no new protocol: each shard answers with its
// own top-n QUALIFYING records (the single-node Section 4 expansion
// over its slice of the corpus), every globally qualifying record
// lives on exactly one shard, and the global filtered top-n is
// therefore contained in the union of the per-shard filtered top-n
// sets — so the same total-order merge used for unfiltered queries is
// exact here too. Each shard bounds its own expansion depth; the
// coordinator never asks for more than n per shard.
func (c *Coordinator) TopNFiltered(ctx context.Context, weights []float64, n int, ranges []server.RangeJSON) (*TopNResult, error) {
	if n <= 0 {
		return nil, errors.New("shard: n must be positive")
	}
	req := server.TopNRequest{Weights: weights, N: n, Ranges: ranges}
	per := make([][]core.Result, len(c.groups))
	stats := make([]core.Stats, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for gi := range c.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			start := time.Now()
			resp, err := hedged(ctx, c, gi, func(ctx context.Context, ep *client.Endpoint) (*server.TopNResponse, error) {
				return ep.TopN(ctx, req)
			})
			c.metrics.perShard[gi].latency.Observe(time.Since(start))
			if err != nil {
				errs[gi] = err
				c.metrics.perShard[gi].failures.Add(1)
				c.metrics.shardFailures.Add(1)
				return
			}
			per[gi], stats[gi] = wireResults(resp.Results), wireStats(resp.Stats)
		}(gi)
	}
	wg.Wait()
	c.metrics.queries.Add(1)
	failed := collectFailures(errs)
	if len(failed) == len(c.groups) {
		c.metrics.totalFailures.Add(1)
		return nil, fmt.Errorf("shard: all %d shard groups failed: %w", len(c.groups), failed[0].Err)
	}
	res := &TopNResult{Results: MergeTopN(per, n), Stats: MergeStats(stats)}
	if len(failed) > 0 {
		c.metrics.partialResults.Add(1)
		perr := &PartialError{Failed: failed}
		res.Failed = perr.Shards()
		return res, perr
	}
	return res, nil
}

// BatchResult answers a batch fan-out positionally, like the
// single-node batch endpoint.
type BatchResult struct {
	Queries []TopNResult
	// Failed lists shard groups that contributed to no query.
	Failed []int
}

// TopNBatch fans a whole batch out to every shard group — each shard
// runs its fused multi-query pass over its own slabs — and merges per
// query position. Failure semantics match TopN; a failed group is
// missing from every query of the batch.
func (c *Coordinator) TopNBatch(ctx context.Context, weights [][]float64, n int) (*BatchResult, error) {
	if n <= 0 {
		return nil, errors.New("shard: n must be positive")
	}
	if len(weights) == 0 {
		return nil, errors.New("shard: no queries")
	}
	req := server.TopNBatchRequest{Weights: weights, N: n}
	type shardAnswer struct {
		results [][]core.Result
		stats   []core.Stats
	}
	answers := make([]shardAnswer, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for gi := range c.groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			start := time.Now()
			resp, err := hedged(ctx, c, gi, func(ctx context.Context, ep *client.Endpoint) (*server.TopNBatchResponse, error) {
				return ep.TopNBatch(ctx, req)
			})
			c.metrics.perShard[gi].latency.Observe(time.Since(start))
			if err != nil {
				errs[gi] = err
				c.metrics.perShard[gi].failures.Add(1)
				c.metrics.shardFailures.Add(1)
				return
			}
			ans := shardAnswer{
				results: make([][]core.Result, len(resp.Queries)),
				stats:   make([]core.Stats, len(resp.Queries)),
			}
			for q, tr := range resp.Queries {
				ans.results[q] = wireResults(tr.Results)
				ans.stats[q] = wireStats(tr.Stats)
			}
			answers[gi] = ans
		}(gi)
	}
	wg.Wait()
	c.metrics.batchRequests.Add(1)
	failed := collectFailures(errs)
	if len(failed) == len(c.groups) {
		c.metrics.totalFailures.Add(1)
		return nil, fmt.Errorf("shard: all %d shard groups failed: %w", len(c.groups), failed[0].Err)
	}
	out := &BatchResult{Queries: make([]TopNResult, len(weights))}
	for q := range weights {
		per := make([][]core.Result, 0, len(c.groups))
		stats := make([]core.Stats, 0, len(c.groups))
		for gi := range c.groups {
			if errs[gi] != nil {
				continue
			}
			if q >= len(answers[gi].results) {
				continue // a shard answering short is a shard bug; treat as contributing nothing
			}
			per = append(per, answers[gi].results[q])
			stats = append(stats, answers[gi].stats[q])
		}
		out.Queries[q] = TopNResult{Results: MergeTopN(per, n), Stats: MergeStats(stats)}
	}
	if len(failed) > 0 {
		c.metrics.partialResults.Add(1)
		perr := &PartialError{Failed: failed}
		out.Failed = perr.Shards()
		for q := range out.Queries {
			out.Queries[q].Failed = out.Failed
		}
		return out, perr
	}
	return out, nil
}

// Insert routes each record to its owning shard group and applies it
// on every replica of that group (each replica holds a full copy of
// the shard). A group acks once at least one of its replicas applied
// the write; replicas that failed are marked diverged, pulled out of
// the read rotation, and owe the write until a resync replays it (see
// writeGroup). Only when no replica of an owning group applied does
// the call fail, and the error names the group.
func (c *Coordinator) Insert(ctx context.Context, recs []core.Record) (int, error) {
	if len(recs) == 0 {
		return 0, errors.New("shard: no records")
	}
	c.metrics.insertOps.Add(1)
	byShard := Partition(c.part, recs)
	var wg sync.WaitGroup
	errs := make([]error, len(c.groups))
	for gi, part := range byShard {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int, part []core.Record) {
			defer wg.Done()
			_, errs[gi] = c.writeGroup(ctx, gi, pendingWrite{insert: part})
		}(gi, part)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		c.metrics.writeFailures.Add(1)
		return 0, err
	}
	return len(recs), nil
}

// Delete removes ids and reports how many were found and deleted. The
// contract matches a single node's: it is an error (core.ErrNotFound)
// only when NOTHING was deleted — when every requested ID was absent
// everywhere. A partially-found request succeeds and reports the
// applied count; callers that need strict existence can compare it to
// len(ids). Duplicate IDs in the request count once.
//
// Routing: with an ID-routable partitioner (hash) each group receives
// exactly its own subset; with vector-dependent partitioning (cluster)
// the delete broadcasts to every group. Both paths ask the shards for
// missing-ok deletes — whether the request as a whole found anything
// is decided here from the aggregate, not by any one shard, because no
// single shard can distinguish "ID absent from the corpus" from "ID
// owned by a sibling shard".
func (c *Coordinator) Delete(ctx context.Context, ids []uint64) (int, error) {
	if len(ids) == 0 {
		return 0, errors.New("shard: no ids")
	}
	c.metrics.deleteOps.Add(1)
	ids = dedupIDs(ids)
	byShard := make([][]uint64, len(c.groups))
	routable := true
	for _, id := range ids {
		gi, ok := c.part.OwnerByID(id)
		if !ok {
			routable = false
			break
		}
		byShard[gi] = append(byShard[gi], id)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.groups))
	applied := make([]int, len(c.groups))
	for gi := range c.groups {
		part := byShard[gi]
		if routable && len(part) == 0 {
			continue
		}
		if !routable {
			part = ids // broadcast: every group sees the full set
		}
		wg.Add(1)
		go func(gi int, part []uint64) {
			defer wg.Done()
			applied[gi], errs[gi] = c.writeGroup(ctx, gi, pendingWrite{del: part, delMissingOK: true})
		}(gi, part)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		c.metrics.writeFailures.Add(1)
		return 0, err
	}
	total := 0
	for _, a := range applied {
		total += a
	}
	if total == 0 {
		c.metrics.writeFailures.Add(1)
		return 0, fmt.Errorf("shard: %w: none of the %d id(s) found on any shard", core.ErrNotFound, len(ids))
	}
	return total, nil
}

// dedupIDs drops repeated IDs, keeping first-occurrence order. Shards
// dedup internally, so a duplicated ID in the request would apply once
// but be expected twice — making an aggregate-vs-requested comparison
// lie. Deduping at the door keeps "applied" counting distinct IDs.
func dedupIDs(ids []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(ids))
	out := make([]uint64, 0, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// writeGroup applies one mutation to every replica of a group, in
// replica order. The group acks as soon as any replica applied: the
// returned count is the first successful replica's. A replica that
// fails after a sibling acked is DIVERGED — it missed a mutation the
// caller was told happened — so it is pulled from the read rotation
// and the write is queued for resync; the same goes for replicas that
// were already diverged when this write arrived (their queue grows, in
// order). Only when zero replicas applied does the call fail, and then
// nothing is queued anywhere: the write didn't happen, the group is
// still internally consistent, and the caller is expected to retry.
func (c *Coordinator) writeGroup(ctx context.Context, gi int, pw pendingWrite) (int, error) {
	g := c.groups[gi]
	applied, acked := 0, false
	var firstErr error
	var behind []*replica // replicas that owe this write if it acks
	for ri, r := range g.replicas {
		if r.isDiverged() {
			behind = append(behind, r)
			continue
		}
		n, err := applyWrite(ctx, r.ep, pw)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d replica %d (%s): %w", gi, ri, r.ep.Base(), err)
			}
			behind = append(behind, r)
			continue
		}
		if !acked {
			applied, acked = n, true
		}
	}
	if !acked {
		if firstErr == nil {
			firstErr = fmt.Errorf("shard %d: every replica is diverged and awaiting resync", gi)
		}
		return 0, firstErr
	}
	for _, r := range behind {
		if r.divergeOn(pw) {
			c.metrics.replicaDivergence.Add(1)
		}
	}
	return applied, nil
}

// applyWrite performs one pendingWrite against one endpoint.
func applyWrite(ctx context.Context, ep *client.Endpoint, pw pendingWrite) (int, error) {
	var resp *server.MutateResponse
	var err error
	if len(pw.insert) > 0 {
		resp, err = ep.Insert(ctx, pw.insert)
	} else {
		resp, err = ep.Delete(ctx, pw.del, pw.delMissingOK)
	}
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// drainReplica replays a diverged replica's queued writes in arrival
// order and, once the queue is empty, clears the divergence flag —
// putting the replica back into the read rotation. Reports whether the
// drain completed. Stops (leaving the replica diverged) at the first
// write that still fails; the next probe retries from where it left
// off. alreadyApplied tolerates the duplicate-delivery case: the
// original request may have been applied server-side before the ack
// was lost, so replay answers like 409-duplicate mean "this write is
// already in" and the queue advances.
func (c *Coordinator) drainReplica(ctx context.Context, r *replica) bool {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return false // another drain is mid-replay; let it finish
	}
	r.draining = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.draining = false
		r.mu.Unlock()
	}()
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.diverged = false
			r.mu.Unlock()
			c.metrics.replicaResyncs.Add(1)
			return true
		}
		pw := r.pending[0]
		r.mu.Unlock()
		if _, err := applyWrite(ctx, r.ep, pw); err != nil && !alreadyApplied(pw, err) {
			return false
		}
		r.mu.Lock()
		r.pending = r.pending[1:]
		r.mu.Unlock()
	}
}

// alreadyApplied reports whether a resync replay error proves the
// write is already present on the replica. Mutations are atomic per
// request server-side (the snapshot swaps once or not at all), so a
// 409 on an insert replay means the whole batch is in; a 404 on a
// strict delete replay means the IDs are already gone.
func alreadyApplied(pw pendingWrite, err error) bool {
	var se *client.StatusError
	if !errors.As(err, &se) {
		return false
	}
	if len(pw.insert) > 0 {
		return se.Code == http.StatusConflict
	}
	return !pw.delMissingOK && se.Code == http.StatusNotFound
}

// ResyncReplicas synchronously replays every diverged replica's queued
// writes (the probe loop does the same in the background). It returns
// the number of replicas restored to the read rotation.
func (c *Coordinator) ResyncReplicas(ctx context.Context) int {
	restored := 0
	for _, g := range c.groups {
		for _, r := range g.replicas {
			if r.isDiverged() && c.drainReplica(ctx, r) {
				restored++
			}
		}
	}
	return restored
}

func collectFailures(errs []error) []ShardError {
	var out []ShardError
	for gi, err := range errs {
		if err != nil {
			out = append(out, ShardError{Shard: gi, Err: err})
		}
	}
	return out
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
