package shard

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// testCluster is S×R live onionserve instances behind httptest, plus
// the one-node oracle over the same corpus.
type testCluster struct {
	endpoints [][]string
	servers   [][]*server.Server
	https     [][]*httptest.Server
	oracle    *core.Index
	recs      []core.Record
}

func startTestCluster(t testing.TB, part Partitioner, recs []core.Record, replicas int) *testCluster {
	t.Helper()
	oracle, err := core.Build(recs, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	parts := Partition(part, recs)
	tc := &testCluster{
		endpoints: make([][]string, len(parts)),
		servers:   make([][]*server.Server, len(parts)),
		https:     make([][]*httptest.Server, len(parts)),
		oracle:    oracle,
		recs:      recs,
	}
	for gi, p := range parts {
		ix, err := core.Build(p, core.Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < replicas; r++ {
			// Replicas share the built index: the server clones before
			// mutating, so a shared starting snapshot is safe.
			srv := server.New(ix, server.Config{})
			hs := httptest.NewServer(srv.Handler())
			tc.servers[gi] = append(tc.servers[gi], srv)
			tc.https[gi] = append(tc.https[gi], hs)
			tc.endpoints[gi] = append(tc.endpoints[gi], hs.URL)
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for gi := range tc.https {
			for r := range tc.https[gi] {
				tc.https[gi][r].Close()
				tc.servers[gi][r].Close(ctx)
			}
		}
	})
	return tc
}

func requireSameRanking(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("rank %d: got (id=%d score=%v) want (id=%d score=%v)",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// noProbe is the test config: deterministic, no background probes, no
// hedge timers racing the assertions.
var noProbe = Config{ProbeInterval: -1, HedgeDelay: -1}

func TestCoordinatorTopNMatchesOracle(t *testing.T) {
	recs := testRecords(t, 3000, 3, 21)
	part, _ := NewHashPartitioner(3)
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx := context.Background()
	for _, w := range workload.QueryWeights(20, 3, 33) {
		for _, n := range []int{1, 10, 50} {
			res, err := coord.TopN(ctx, w, n)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := tc.oracle.TopN(w, n)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRanking(t, res.Results, want)
			if res.Failed != nil {
				t.Fatalf("unexpected failed shards: %v", res.Failed)
			}
			// Work counters sum across shards; layer pruning differs per
			// shard so only the evaluation floor is comparable: every shard
			// must have evaluated at least its contribution.
			if res.Stats.RecordsEvaluated < wantStats.RecordsEvaluated/3 {
				t.Fatalf("implausibly low merged stats: %+v vs oracle %+v", res.Stats, wantStats)
			}
		}
	}
}

func TestCoordinatorBatchMatchesOracle(t *testing.T) {
	recs := testRecords(t, 2000, 3, 22)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ws := workload.QueryWeights(8, 3, 44)
	batch, err := coord.TopNBatch(context.Background(), ws, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Queries) != len(ws) {
		t.Fatalf("%d answers for %d queries", len(batch.Queries), len(ws))
	}
	for q, w := range ws {
		want, _, err := tc.oracle.TopN(w, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRanking(t, batch.Queries[q].Results, want)
	}
}

func TestCoordinatorPartialResults(t *testing.T) {
	recs := testRecords(t, 1500, 3, 23)
	part, _ := NewHashPartitioner(3)
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, Config{ProbeInterval: -1, HedgeDelay: -1, ShardTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Kill shard 1's only replica.
	tc.https[1][0].Close()

	w := []float64{0.4, 0.4, 0.2}
	res, err := coord.TopN(context.Background(), w, 20)
	var perr *PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if got := perr.Shards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed shards %v, want [1]", got)
	}
	if res == nil || len(res.Results) == 0 {
		t.Fatal("partial failure must still return the surviving merge")
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("result.Failed %v, want [1]", res.Failed)
	}
	// The surviving merge is exact over shards 0 and 2.
	survivors := MergeTopN(shardRankings(t, tc, part, w, 20, map[int]bool{1: true}), 20)
	requireSameRanking(t, res.Results, survivors)

	// Kill the rest: total failure is an error, not a partial result.
	tc.https[0][0].Close()
	tc.https[2][0].Close()
	if _, err := coord.TopN(context.Background(), w, 20); err == nil || errors.As(err, &perr) {
		t.Fatalf("all-shards-down: want terminal error, got %v", err)
	}
}

// shardRankings queries each live shard's index directly.
func shardRankings(t *testing.T, tc *testCluster, part Partitioner, w []float64, n int, dead map[int]bool) [][]core.Result {
	t.Helper()
	parts := Partition(part, tc.recs)
	var out [][]core.Result
	for gi, p := range parts {
		if dead[gi] {
			continue
		}
		ix, err := core.Build(p, core.Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := ix.TopN(w, n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func TestCoordinatorRoutesWrites(t *testing.T) {
	recs := testRecords(t, 1000, 3, 24)
	part, _ := NewHashPartitioner(3)
	tc := startTestCluster(t, part, recs, 2)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	before := make([]int, 3)
	for gi := range tc.servers {
		before[gi] = tc.servers[gi][0].Snapshot().Len()
	}

	// Insert records with known owners; only the owning group (and both
	// of its replicas) may grow.
	fresh := workload.Points(workload.Gaussian, 30, 3, 99)
	ins := make([]core.Record, len(fresh))
	for i, p := range fresh {
		ins[i] = core.Record{ID: uint64(5000 + i), Vector: p}
	}
	applied, err := coord.Insert(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(ins) {
		t.Fatalf("applied %d, want %d", applied, len(ins))
	}
	wantGrowth := make([]int, 3)
	for _, r := range ins {
		o, _ := part.OwnerByID(r.ID)
		wantGrowth[o]++
	}
	for gi := range tc.servers {
		for ri, srv := range tc.servers[gi] {
			got := srv.Snapshot().Len() - before[gi]
			if got != wantGrowth[gi] {
				t.Fatalf("shard %d replica %d grew by %d, want %d", gi, ri, got, wantGrowth[gi])
			}
		}
	}

	// Routed deletes: strict per-shard subsets, every replica converges.
	del := []uint64{5000, 5001, 5002, 17, 42}
	applied, err = coord.Delete(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(del) {
		t.Fatalf("deleted %d, want %d", applied, len(del))
	}
	for gi := range tc.servers {
		for ri, srv := range tc.servers[gi] {
			snap := srv.Snapshot()
			for _, id := range del {
				if _, ok := snap.LayerOf(id); ok {
					t.Fatalf("shard %d replica %d still holds deleted id %d", gi, ri, id)
				}
			}
		}
	}

	// A delete that finds nothing fails like a single node's 404 …
	if _, err := coord.Delete(ctx, []uint64{999_999}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("routed delete of a missing id: want ErrNotFound, got %v", err)
	}
	// … but a partially-found routed delete succeeds with the count.
	applied, err = coord.Delete(ctx, []uint64{5003, 999_999})
	if err != nil {
		t.Fatalf("partially-found routed delete: %v", err)
	}
	if applied != 1 {
		t.Fatalf("partially-found routed delete applied %d, want 1", applied)
	}
}

func TestCoordinatorBroadcastDelete(t *testing.T) {
	recs := testRecords(t, 1200, 3, 25)
	part, err := NewClusterPartitioner(recs, 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	// Cluster ownership is not ID-derivable → the delete broadcasts in
	// missing-ok mode, and the total applied must equal the request.
	del := []uint64{3, 57, 311, 902}
	applied, err := coord.Delete(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(del) {
		t.Fatalf("broadcast delete applied %d, want %d", applied, len(del))
	}
	for gi := range tc.servers {
		snap := tc.servers[gi][0].Snapshot()
		for _, id := range del {
			if _, ok := snap.LayerOf(id); ok {
				t.Fatalf("shard %d still holds deleted id %d", gi, id)
			}
		}
	}

	// Partially-found requests succeed with the found count — not-found
	// is an error only when NOTHING was deleted (the single-node
	// contract: 404 means the request changed nothing).
	applied, err = coord.Delete(ctx, []uint64{5, 888_888})
	if err != nil {
		t.Fatalf("partially-found broadcast delete: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d of the findable ids, want 1", applied)
	}

	// All-missing is the 404 case, and nothing was mutated to get there.
	applied, err = coord.Delete(ctx, []uint64{888_888, 999_999})
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("all-missing broadcast delete: want ErrNotFound, got %v", err)
	}
	if applied != 0 {
		t.Fatalf("all-missing broadcast delete applied %d, want 0", applied)
	}

	// Duplicate IDs count once: {id, id} with id present deletes one
	// record and succeeds — the dedup keeps the aggregate honest.
	applied, err = coord.Delete(ctx, []uint64{9, 9, 9})
	if err != nil {
		t.Fatalf("duplicate-id broadcast delete: %v", err)
	}
	if applied != 1 {
		t.Fatalf("duplicate-id broadcast delete applied %d, want 1", applied)
	}
}

func TestCoordinatorWriteFailureNamesShard(t *testing.T) {
	recs := testRecords(t, 600, 3, 26)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	tc.https[1][0].Close()
	// A record owned by the dead shard: find an ID hash-routed to 1.
	id := uint64(10_001)
	for {
		if o, _ := part.OwnerByID(id); o == 1 {
			break
		}
		id++
	}
	_, err = coord.Insert(context.Background(), []core.Record{{ID: id, Vector: []float64{1, 2, 3}}})
	if err == nil {
		t.Fatal("insert into a dead shard succeeded")
	}
}

func TestCoordinatorReadiness(t *testing.T) {
	recs := testRecords(t, 400, 3, 27)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 2)
	coord, err := New(part, tc.endpoints, Config{ProbeInterval: 50 * time.Millisecond, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if !coord.Ready() {
		t.Fatal("fresh coordinator with live replicas not ready")
	}
	// Mark shard 0 administratively not ready on both replicas; the
	// probe loop must notice and flip group and coordinator readiness.
	tc.servers[0][0].SetReady(false)
	tc.servers[0][1].SetReady(false)
	deadline := time.Now().Add(5 * time.Second)
	for coord.GroupReady(0) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if coord.GroupReady(0) {
		t.Fatal("probe loop never noticed both replicas going not-ready")
	}
	if coord.Ready() {
		t.Fatal("coordinator ready with a dark group")
	}
	if !coord.GroupReady(1) {
		t.Fatal("healthy group marked not ready")
	}
	// Queries still work: not-ready replicas are fanned to as a last
	// resort (the server answers queries while administratively not
	// ready; real recovery would answer 503 and fail over).
	if _, err := coord.TopN(context.Background(), []float64{1, 1, 1}, 5); err != nil {
		t.Fatalf("query during not-ready: %v", err)
	}
	// Recovery flips it back.
	tc.servers[0][0].SetReady(true)
	for !coord.GroupReady(0) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !coord.Ready() {
		t.Fatal("coordinator did not recover readiness")
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	part, _ := NewHashPartitioner(2)
	if _, err := New(part, [][]string{{"http://a"}}, noProbe); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := New(part, [][]string{{"http://a"}, {}}, noProbe); err == nil {
		t.Fatal("empty replica group accepted")
	}
	coord, err := New(part, [][]string{{"http://a"}, {"http://b"}}, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.TopN(context.Background(), []float64{1}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := coord.TopNBatch(context.Background(), nil, 5); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := coord.Insert(context.Background(), nil); err == nil {
		t.Fatal("empty insert accepted")
	}
	if _, err := coord.Delete(context.Background(), nil); err == nil {
		t.Fatal("empty delete accepted")
	}
}
