// Package shard distributes an Onion index across multiple onionserve
// nodes and makes the distribution invisible to correctness. The load-
// bearing fact (paper Theorem 1 plus one line of set algebra): the
// top-N of a union is contained in the union of per-subset top-Ns, so
// a coordinator that fans a linear query out to S shards, collects each
// shard's top-N over its own Onion index, and merges under the same
// strict total order the single-node walk uses (descending score, ties
// by ascending ID — internal/topk) returns exactly the records, scores
// and order a one-node index over the whole corpus would have returned.
// No shard needs to know about any other; exactness survives sharding
// with zero coordination beyond the merge.
//
// The package supplies the three pieces of that argument: Partitioner
// (who owns which record), MergeTopN (the order-preserving merge), and
// Coordinator (scatter-gather with replica groups, hedged requests and
// typed partial-result degradation). cmd/onioncoord wraps Coordinator
// in the same JSON/HTTP surface onionserve exposes, so clients cannot
// tell a coordinator from a very large single node.
package shard

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Partitioner assigns every record to exactly one shard. Queries never
// consult it — a linear query must visit every shard regardless of the
// partitioning — but the write path routes each insert and (when the
// owner is derivable) each delete to the single owning shard group.
type Partitioner interface {
	// NumShards returns the shard count S; owners are in [0, S).
	NumShards() int
	// Owner returns the shard owning a record. The vector may be
	// consulted (cluster-aware partitioning) or ignored (hash).
	Owner(id uint64, vector []float64) int
	// OwnerByID returns the owning shard when it is derivable from the
	// ID alone. ok=false (cluster-aware partitioning: ownership depends
	// on the vector, which a delete request does not carry) tells the
	// coordinator to broadcast deletes instead of routing them.
	OwnerByID(id uint64) (int, bool)
}

// HashPartitioner is the default: shard = mix(ID) mod S. IDs are
// application-assigned and often sequential, so they are run through a
// splitmix64-style finalizer first — without it, mod S would send long
// ID runs to shards in lockstep and skew any corpus whose IDs correlate
// with insertion order.
type HashPartitioner struct{ Shards int }

// NewHashPartitioner returns a hash partitioner over s shards.
func NewHashPartitioner(s int) (HashPartitioner, error) {
	if s <= 0 {
		return HashPartitioner{}, fmt.Errorf("shard: shard count %d out of range", s)
	}
	return HashPartitioner{Shards: s}, nil
}

// NumShards implements Partitioner.
func (p HashPartitioner) NumShards() int { return p.Shards }

// Owner implements Partitioner; the vector is ignored.
func (p HashPartitioner) Owner(id uint64, _ []float64) int {
	o, _ := p.OwnerByID(id)
	return o
}

// OwnerByID implements Partitioner; hash ownership is always derivable.
func (p HashPartitioner) OwnerByID(id uint64) (int, bool) {
	return int(mix64(id) % uint64(p.Shards)), true
}

// mix64 is the splitmix64 output finalizer: a cheap bijection whose
// low bits depend on every input bit.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ClusterPartitioner assigns records to the shard whose k-means
// centroid is nearest (ties by lower shard index), giving each shard a
// spatially coherent slice of the corpus. The payoff is per-shard layer
// depth: a shard holding one cluster peels far fewer, fuller layers
// than a shard holding a random sample, so directional queries touch
// fewer records per shard (the same locality argument as the paper's
// Section 4 hierarchy, applied across machines). Ownership depends on
// the vector, so deletes cannot be routed by ID — see OwnerByID.
type ClusterPartitioner struct {
	centers [][]float64
}

// NewClusterPartitioner learns s centroids from the given records with
// the k-means of internal/cluster (k-means++ seeding, deterministic
// under seed). The records are typically the initial corpus or a
// sample of it; later inserts are assigned to the nearest learned
// centroid without re-clustering.
func NewClusterPartitioner(recs []core.Record, s int, seed int64) (*ClusterPartitioner, error) {
	if s <= 0 {
		return nil, fmt.Errorf("shard: shard count %d out of range", s)
	}
	if len(recs) < s {
		return nil, fmt.Errorf("shard: %d records cannot seed %d cluster shards", len(recs), s)
	}
	pts := make([][]float64, len(recs))
	for i, r := range recs {
		pts[i] = r.Vector
	}
	res, err := cluster.KMeans(pts, s, cluster.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("shard: cluster partitioning: %w", err)
	}
	return &ClusterPartitioner{centers: res.Centers}, nil
}

// NumShards implements Partitioner.
func (p *ClusterPartitioner) NumShards() int { return len(p.centers) }

// Owner implements Partitioner: nearest centroid by squared Euclidean
// distance, ties broken by the lower shard index so assignment is a
// pure function of the vector.
func (p *ClusterPartitioner) Owner(_ uint64, vector []float64) int {
	best, bestD := 0, sqDist(p.centers[0], vector)
	for c := 1; c < len(p.centers); c++ {
		if d := sqDist(p.centers[c], vector); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// OwnerByID implements Partitioner: never derivable — cluster
// ownership is a function of the vector.
func (p *ClusterPartitioner) OwnerByID(uint64) (int, bool) { return 0, false }

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Partition splits records into per-shard slices by owner, preserving
// relative order within each shard. It is how a corpus is initially
// dealt out to shard builders (onionbench -shard-scaling, onionctl
// tooling); the coordinator uses the same Partitioner for routing, so
// built shards and routed writes agree on ownership.
func Partition(p Partitioner, recs []core.Record) [][]core.Record {
	out := make([][]core.Record, p.NumShards())
	for _, r := range recs {
		o := p.Owner(r.ID, r.Vector)
		out[o] = append(out[o], r)
	}
	return out
}
