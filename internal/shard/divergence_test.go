package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// Fault modes for writeFaultProxy.
const (
	faultNone    = iota // pass everything through
	faultReject         // refuse mutations with 503 before they apply
	faultLoseAck        // apply the mutation, then report 503 (lost ack)
)

// writeFaultProxy sits between httptest and one replica's handler and
// injects write failures while leaving reads untouched. topnHits
// counts the /v1/topn queries that reached the replica — the probe for
// "did the coordinator fan a read out here".
type writeFaultProxy struct {
	inner    http.Handler
	mode     atomic.Int32
	topnHits atomic.Int64
}

func (p *writeFaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	isWrite := r.URL.Path == "/v1/insert" || r.URL.Path == "/v1/delete"
	if r.URL.Path == "/v1/topn" {
		p.topnHits.Add(1)
	}
	if isWrite {
		switch p.mode.Load() {
		case faultReject:
			writeInjected(w, "injected write fault")
			return
		case faultLoseAck:
			// The replica applies the write; only the acknowledgment is
			// lost. This is the duplicate-delivery case resync must
			// tolerate: the coordinator will replay a write the replica
			// already holds.
			p.inner.ServeHTTP(httptest.NewRecorder(), r)
			writeInjected(w, "injected ack loss")
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

func writeInjected(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"error":%q}`, msg)
}

// faultyPair is one shard group of two replicas sharing a corpus, the
// second behind a writeFaultProxy.
type faultyPair struct {
	srvA, srvB *server.Server
	proxy      *writeFaultProxy
	coord      *Coordinator
}

func startFaultyPair(t *testing.T, recs []core.Record, cfg Config) *faultyPair {
	t.Helper()
	ix, err := core.Build(recs, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srvA := server.New(ix, server.Config{})
	srvB := server.New(ix, server.Config{})
	proxy := &writeFaultProxy{inner: srvB.Handler()}
	hsA := httptest.NewServer(srvA.Handler())
	hsB := httptest.NewServer(proxy)
	part, _ := NewHashPartitioner(1)
	coord, err := New(part, [][]string{{hsA.URL, hsB.URL}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		coord.Close()
		hsA.Close()
		hsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srvA.Close(ctx)
		srvB.Close(ctx)
	})
	return &faultyPair{srvA: srvA, srvB: srvB, proxy: proxy, coord: coord}
}

// TestDivergedReplicaQuarantinedUntilResync is the satellite's core
// guarantee: a replica that missed an acked write serves NO reads —
// hedged or otherwise — until a resync replays its backlog, and after
// the resync it converges bit-for-bit and rejoins the rotation.
func TestDivergedReplicaQuarantinedUntilResync(t *testing.T) {
	recs := testRecords(t, 600, 3, 41)
	// A real hedge timer: the point is that even timer-driven backup
	// requests respect the quarantine.
	fp := startFaultyPair(t, recs, Config{ProbeInterval: -1, HedgeDelay: time.Millisecond})
	coord, proxy := fp.coord, fp.proxy
	ctx := context.Background()
	weights := workload.QueryWeights(10, 3, 55)

	// Healthy warm-up: round-robin rotation must reach replica B.
	for _, w := range weights {
		if _, err := coord.TopN(ctx, w, 20); err != nil {
			t.Fatal(err)
		}
	}
	if proxy.topnHits.Load() == 0 {
		t.Fatal("replica B never served a read while healthy")
	}

	// Partial write failure: B rejects, A acks — the insert SUCCEEDS
	// and B is now diverged.
	proxy.mode.Store(faultReject)
	newRec := core.Record{ID: 50_000, Vector: []float64{0.9, 0.8, 0.7}}
	applied, err := coord.Insert(ctx, []core.Record{newRec})
	if err != nil {
		t.Fatalf("insert with one failing replica must still ack: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d, want 1", applied)
	}
	if got := coord.metrics.replicaDivergence.Value(); got != 1 {
		t.Fatalf("shard_replica_divergence = %d, want 1", got)
	}
	if _, ok := fp.srvA.Snapshot().LayerOf(newRec.ID); !ok {
		t.Fatal("acking replica does not hold the inserted record")
	}
	if _, ok := fp.srvB.Snapshot().LayerOf(newRec.ID); ok {
		t.Fatal("failed replica holds the record it rejected")
	}
	if !coord.GroupReady(0) {
		t.Fatal("group with one healthy replica reported not ready")
	}

	// While diverged: every read must be exact over the post-insert
	// corpus and NONE may touch B.
	oracle1, err := core.Build(append(append([]core.Record{}, recs...), newRec), core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	base := proxy.topnHits.Load()
	for _, w := range weights {
		res, err := coord.TopN(ctx, w, 20)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle1.TopN(w, 20)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRanking(t, res.Results, want)
	}
	if got := proxy.topnHits.Load(); got != base {
		t.Fatalf("diverged replica served %d reads; stale answers reached the merge", got-base)
	}

	// A second write while diverged queues behind the first (B is
	// skipped, not retried inline).
	if _, err := coord.Delete(ctx, []uint64{recs[0].ID}); err != nil {
		t.Fatalf("delete with a diverged replica must still ack: %v", err)
	}
	if got := coord.metrics.replicaDivergence.Value(); got != 1 {
		t.Fatalf("re-diverging an already-diverged replica bumped the counter to %d", got)
	}

	// Heal and resync: the backlog replays in order, the replica
	// converges to the acking replica's exact content, and rejoins.
	proxy.mode.Store(faultNone)
	if restored := coord.ResyncReplicas(ctx); restored != 1 {
		t.Fatalf("resync restored %d replicas, want 1", restored)
	}
	if got := coord.metrics.replicaResyncs.Value(); got != 1 {
		t.Fatalf("shard_replica_resyncs = %d, want 1", got)
	}
	a, b := fp.srvA.Snapshot(), fp.srvB.Snapshot()
	if a.ContentFingerprint() != b.ContentFingerprint() {
		t.Fatalf("replicas diverged after resync: %s vs %s", a.ContentFingerprint(), b.ContentFingerprint())
	}
	base = proxy.topnHits.Load()
	for _, w := range weights {
		if _, err := coord.TopN(ctx, w, 20); err != nil {
			t.Fatal(err)
		}
	}
	if proxy.topnHits.Load() == base {
		t.Fatal("resynced replica never rejoined the read rotation")
	}
}

// TestWriteFailsCleanWhenNoReplicaAcks: when ZERO replicas apply, the
// write failed outright — no divergence, nothing queued, the group
// stays consistent and serving, and a plain retry works.
func TestWriteFailsCleanWhenNoReplicaAcks(t *testing.T) {
	recs := testRecords(t, 300, 3, 42)
	ix, err := core.Build(recs, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ix, server.Config{})
	proxy := &writeFaultProxy{inner: srv.Handler()}
	hs := httptest.NewServer(proxy)
	part, _ := NewHashPartitioner(1)
	coord, err := New(part, [][]string{{hs.URL}}, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		coord.Close()
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	ctx := context.Background()

	proxy.mode.Store(faultReject)
	rec := core.Record{ID: 60_000, Vector: []float64{1, 2, 3}}
	if _, err := coord.Insert(ctx, []core.Record{rec}); err == nil {
		t.Fatal("insert with no acking replica succeeded")
	}
	if got := coord.metrics.replicaDivergence.Value(); got != 0 {
		t.Fatalf("unacked write marked %d replicas diverged; the group is still consistent", got)
	}
	if _, err := coord.TopN(ctx, []float64{1, 1, 1}, 5); err != nil {
		t.Fatalf("read after failed write: %v", err)
	}
	proxy.mode.Store(faultNone)
	if applied, err := coord.Insert(ctx, []core.Record{rec}); err != nil || applied != 1 {
		t.Fatalf("retry after heal: applied=%d err=%v", applied, err)
	}
}

// TestResyncToleratesLostAck: the replica applied the write but the
// ack was lost, so the coordinator queues a replay the replica already
// holds. The replay answers 409-duplicate and the drain must read that
// as "already in" and advance, not wedge the replica out of rotation
// forever.
func TestResyncToleratesLostAck(t *testing.T) {
	recs := testRecords(t, 300, 3, 43)
	fp := startFaultyPair(t, recs, noProbe)
	coord, proxy := fp.coord, fp.proxy
	ctx := context.Background()

	proxy.mode.Store(faultLoseAck)
	rec := core.Record{ID: 70_000, Vector: []float64{0.1, 0.2, 0.3}}
	if _, err := coord.Insert(ctx, []core.Record{rec}); err != nil {
		t.Fatalf("insert with one lost ack must still ack: %v", err)
	}
	if got := coord.metrics.replicaDivergence.Value(); got != 1 {
		t.Fatalf("shard_replica_divergence = %d, want 1", got)
	}
	// B actually holds the record despite reporting failure.
	if _, ok := fp.srvB.Snapshot().LayerOf(rec.ID); !ok {
		t.Fatal("fault proxy did not apply before losing the ack")
	}

	proxy.mode.Store(faultNone)
	if restored := coord.ResyncReplicas(ctx); restored != 1 {
		t.Fatalf("resync restored %d replicas, want 1", restored)
	}
	a, b := fp.srvA.Snapshot(), fp.srvB.Snapshot()
	if a.ContentFingerprint() != b.ContentFingerprint() {
		t.Fatal("replicas diverged after duplicate-delivery resync")
	}
}

// TestDeleteNotFoundContract pins the cross-surface delete contract:
// HTTP 404 if and only if the request deleted nothing, on a single
// node and on a coordinator alike — and a 404 always means the corpus
// is untouched.
func TestDeleteNotFoundContract(t *testing.T) {
	recs := testRecords(t, 800, 3, 47)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	coord, err := New(part, tc.endpoints, noProbe)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ch := httptest.NewServer(coord.Handler())
	defer ch.Close()

	postDelete := func(base string, ids []uint64, missingOK bool) (int, server.MutateResponse) {
		t.Helper()
		body, _ := json.Marshal(server.DeleteRequest{IDs: ids, MissingOK: missingOK})
		resp, err := http.Post(base+"/v1/delete", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var mr server.MutateResponse
		json.NewDecoder(resp.Body).Decode(&mr)
		return resp.StatusCode, mr
	}
	clusterLen := func() int {
		total := 0
		for gi := range tc.servers {
			total += tc.servers[gi][0].Snapshot().Len()
		}
		return total
	}

	// Coordinator, nothing found: 404 and the corpus is untouched.
	before := clusterLen()
	if code, _ := postDelete(ch.URL, []uint64{700_001, 700_002}, false); code != http.StatusNotFound {
		t.Fatalf("coordinator all-missing delete: status %d, want 404", code)
	}
	if clusterLen() != before {
		t.Fatal("a 404 delete mutated the cluster")
	}

	// Coordinator, partially found: success with the found count.
	code, mr := postDelete(ch.URL, []uint64{3, 700_001}, false)
	if code != http.StatusOK || mr.Applied != 1 {
		t.Fatalf("coordinator partial delete: status %d applied %d, want 200/1", code, mr.Applied)
	}
	if clusterLen() != before-1 {
		t.Fatal("partial delete did not remove exactly the found id")
	}

	// Single node, nothing found: same 404, same untouched corpus —
	// strict mode is atomic, so even a mixed request that 404s (the
	// single node cannot know the missing id lives elsewhere) deletes
	// nothing.
	node := tc.https[0][0].URL
	nodeLen := tc.servers[0][0].Snapshot().Len()
	if code, _ := postDelete(node, []uint64{700_001}, false); code != http.StatusNotFound {
		t.Fatalf("single-node all-missing delete: status %d, want 404", code)
	}
	if tc.servers[0][0].Snapshot().Len() != nodeLen {
		t.Fatal("single-node 404 delete mutated the corpus")
	}

	// Missing-ok is the explicit opt-out on both surfaces: deleting
	// nothing is then a 200 with applied 0 on a single node.
	if code, mr := postDelete(node, []uint64{700_001}, true); code != http.StatusOK || mr.Applied != 0 {
		t.Fatalf("single-node missing-ok delete: status %d applied %d, want 200/0", code, mr.Applied)
	}

	// The coordinator's not-found error is typed for Go callers too.
	if _, err := coord.Delete(context.Background(), []uint64{700_001}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("coordinator Delete all-missing: want ErrNotFound, got %v", err)
	}
}
