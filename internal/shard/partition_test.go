package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func testRecords(t testing.TB, n, dim int, seed int64) []core.Record {
	t.Helper()
	pts := workload.Points(workload.Gaussian, n, dim, seed)
	recs := make([]core.Record, n)
	for i, p := range pts {
		recs[i] = core.Record{ID: uint64(i + 1), Vector: p}
	}
	return recs
}

func TestHashPartitionerDeterministicAndInRange(t *testing.T) {
	p, err := NewHashPartitioner(5)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 10_000; id++ {
		o := p.Owner(id, nil)
		if o < 0 || o >= 5 {
			t.Fatalf("id %d: owner %d out of range", id, o)
		}
		byID, ok := p.OwnerByID(id)
		if !ok {
			t.Fatalf("hash ownership must be ID-derivable")
		}
		if byID != o {
			t.Fatalf("id %d: Owner=%d OwnerByID=%d", id, o, byID)
		}
		if again := p.Owner(id, []float64{1, 2}); again != o {
			t.Fatalf("id %d: owner changed with vector present", id)
		}
	}
}

// TestHashPartitionerBalancesSequentialIDs pins the reason for the
// splitmix finalizer: sequential IDs (the common case) must spread
// evenly, not stripe.
func TestHashPartitionerBalancesSequentialIDs(t *testing.T) {
	const shards, n = 4, 40_000
	p, err := NewHashPartitioner(shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for id := uint64(1); id <= n; id++ {
		o, _ := p.OwnerByID(id)
		counts[o]++
	}
	want := n / shards
	for s, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("shard %d holds %d of %d records (>10%% off an even split: %v)", s, c, n, counts)
		}
	}
}

func TestHashPartitionerRejectsBadCounts(t *testing.T) {
	for _, s := range []int{0, -1} {
		if _, err := NewHashPartitioner(s); err == nil {
			t.Fatalf("shard count %d accepted", s)
		}
	}
}

func TestClusterPartitionerAssignsNearestCentroid(t *testing.T) {
	recs := testRecords(t, 2000, 3, 7)
	p, err := NewClusterPartitioner(recs, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 4 {
		t.Fatalf("NumShards=%d", p.NumShards())
	}
	if _, ok := p.OwnerByID(17); ok {
		t.Fatal("cluster ownership must not be ID-derivable")
	}
	for _, r := range recs[:200] {
		o := p.Owner(r.ID, r.Vector)
		d := sqDist(p.centers[o], r.Vector)
		for c := range p.centers {
			if dc := sqDist(p.centers[c], r.Vector); dc < d {
				t.Fatalf("record %d assigned to shard %d (dist %g) but shard %d is closer (%g)", r.ID, o, d, c, dc)
			}
		}
	}
	// Determinism under the same seed.
	p2, err := NewClusterPartitioner(recs, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if p.Owner(r.ID, r.Vector) != p2.Owner(r.ID, r.Vector) {
			t.Fatalf("cluster partitioning not deterministic under a fixed seed")
		}
	}
}

func TestClusterPartitionerRejectsTinyCorpus(t *testing.T) {
	recs := testRecords(t, 3, 2, 1)
	if _, err := NewClusterPartitioner(recs, 5, 1); err == nil {
		t.Fatal("3 records accepted to seed 5 shards")
	}
}

func TestPartitionCoversEveryRecordOnce(t *testing.T) {
	recs := testRecords(t, 5000, 3, 11)
	for _, newPart := range []func() Partitioner{
		func() Partitioner { p, _ := NewHashPartitioner(3); return p },
		func() Partitioner { p, _ := NewClusterPartitioner(recs, 3, 11); return p },
	} {
		p := newPart()
		parts := Partition(p, recs)
		if len(parts) != 3 {
			t.Fatalf("got %d partitions", len(parts))
		}
		seen := make(map[uint64]int, len(recs))
		total := 0
		for s, part := range parts {
			var prev uint64
			for i, r := range part {
				seen[r.ID]++
				total++
				if owner := p.Owner(r.ID, r.Vector); owner != s {
					t.Fatalf("record %d placed on shard %d but owned by %d", r.ID, s, owner)
				}
				// Relative order preserved within a shard (IDs were assigned
				// ascending in the input).
				if i > 0 && r.ID <= prev {
					t.Fatalf("shard %d: order not preserved (%d after %d)", s, r.ID, prev)
				}
				prev = r.ID
			}
		}
		if total != len(recs) {
			t.Fatalf("partitions hold %d records, want %d", total, len(recs))
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("record %d appears %d times", id, c)
			}
		}
	}
}
