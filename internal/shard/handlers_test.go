package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// startCoordinatorHTTP puts the coordinator's HTTP surface in front of
// a live test cluster.
func startCoordinatorHTTP(t *testing.T, tc *testCluster, part Partitioner, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := New(part, tc.endpoints, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		hs.Close()
		coord.Close()
	})
	return coord, hs
}

func postCoord(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCoordinatorHTTPTopN(t *testing.T) {
	recs := testRecords(t, 1500, 3, 51)
	part, _ := NewHashPartitioner(3)
	tc := startTestCluster(t, part, recs, 1)
	_, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	w := workload.QueryWeights(1, 3, 52)[0]
	resp := postCoord(t, hs.URL+"/v1/topn", TopNRequest{TopNRequest: server.TopNRequest{Weights: w, N: 10}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Partial || got.FailedShards != nil {
		t.Fatalf("healthy cluster answered partial: %+v", got)
	}
	want, _, err := tc.oracle.TopN(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want))
	}
	for i, r := range got.Results {
		if r.ID != want[i].ID || r.Score != want[i].Score {
			t.Fatalf("rank %d: got %+v want %+v", i, r, want[i])
		}
	}
}

func TestCoordinatorHTTPBatch(t *testing.T) {
	recs := testRecords(t, 1000, 3, 53)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	_, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	ws := workload.QueryWeights(4, 3, 54)
	resp := postCoord(t, hs.URL+"/v1/topn/batch", TopNBatchRequest{TopNBatchRequest: server.TopNBatchRequest{Weights: ws, N: 5}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != len(ws) {
		t.Fatalf("%d answers for %d queries", len(got.Queries), len(ws))
	}
	for q, w := range ws {
		want, _, err := tc.oracle.TopN(w, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got.Queries[q].Results {
			if r.ID != want[i].ID || r.Score != want[i].Score {
				t.Fatalf("query %d rank %d: got %+v want %+v", q, i, r, want[i])
			}
		}
	}
}

// TestCoordinatorHTTPFilteredMatchesOracle replaces the old
// honest-refusal 501: range predicates now push down to every shard
// (each answers its top-n qualifying records, which contain its
// contribution to the global filtered top-n) and the total-order merge
// must be bit-identical to a single node holding the union corpus.
func TestCoordinatorHTTPFilteredMatchesOracle(t *testing.T) {
	recs := testRecords(t, 300, 3, 55)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	_, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	w := []float64{1, 1, 1}
	req := TopNRequest{TopNRequest: server.TopNRequest{
		Weights: w, N: 5,
		Ranges: []server.RangeJSON{{Attr: 0, Lo: server.Bound(0), Hi: server.Bound(1)}},
	}}
	resp := postCoord(t, hs.URL+"/v1/topn", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want, _, err := tc.oracle.TopNInRanges(w, 5, map[int][2]float64{0: {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want))
	}
	for i, r := range got.Results {
		if r.ID != want[i].ID || r.Score != want[i].Score {
			t.Fatalf("rank %d: got %+v want %+v", i, r, want[i])
		}
	}

	// Degenerate predicates normalize away at the coordinator too: an
	// all-unbounded ranges list is served as the plain unfiltered scatter.
	req = TopNRequest{TopNRequest: server.TopNRequest{
		Weights: w, N: 5,
		Ranges: []server.RangeJSON{{Attr: 0}},
	}}
	resp2 := postCoord(t, hs.URL+"/v1/topn", req)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("degenerate filter status %d, want 200", resp2.StatusCode)
	}
	var got2 TopNResponse
	if err := json.NewDecoder(resp2.Body).Decode(&got2); err != nil {
		t.Fatal(err)
	}
	want2, _, err := tc.oracle.TopN(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got2.Results {
		if r.ID != want2[i].ID || r.Score != want2[i].Score {
			t.Fatalf("degenerate filter rank %d: got %+v want %+v", i, r, want2[i])
		}
	}

	// An empty interval is still a parse-time 400, not a scatter.
	req = TopNRequest{TopNRequest: server.TopNRequest{
		Weights: w, N: 5,
		Ranges: []server.RangeJSON{{Attr: 0, Lo: server.Bound(2), Hi: server.Bound(1)}},
	}}
	resp3 := postCoord(t, hs.URL+"/v1/topn", req)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty interval status %d, want 400", resp3.StatusCode)
	}
}

func TestCoordinatorHTTPPartialOptIn(t *testing.T) {
	recs := testRecords(t, 900, 3, 56)
	part, _ := NewHashPartitioner(3)
	tc := startTestCluster(t, part, recs, 1)
	_, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	tc.https[2][0].Close() // shard 2 goes dark

	base := server.TopNRequest{Weights: []float64{0.3, 0.3, 0.4}, N: 10}

	// Without the opt-in: 503 naming the shard.
	resp := postCoord(t, hs.URL+"/v1/topn", TopNRequest{TopNRequest: base})
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if len(eresp.FailedShards) != 1 || eresp.FailedShards[0] != 2 {
		t.Fatalf("failed_shards %v, want [2]", eresp.FailedShards)
	}

	// With the opt-in: 200, partial markers, surviving merge.
	resp = postCoord(t, hs.URL+"/v1/topn", TopNRequest{TopNRequest: base, Partial: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-in status %d, want 200", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != 2 {
		t.Fatalf("partial markers wrong: partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	if len(got.Results) == 0 {
		t.Fatal("partial answer carried no surviving results")
	}
}

func TestCoordinatorHTTPMutations(t *testing.T) {
	recs := testRecords(t, 500, 3, 57)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 1)
	_, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	resp := postCoord(t, hs.URL+"/v1/insert", server.InsertRequest{
		Records: []server.RecordJSON{{ID: 9001, Vector: []float64{1, 2, 3}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	var mr server.MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 1 {
		t.Fatalf("insert applied %d", mr.Applied)
	}

	resp2 := postCoord(t, hs.URL+"/v1/delete", server.DeleteRequest{IDs: []uint64{9001, 7}})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp2.StatusCode)
	}

	// Deleting a missing ID maps to 404, like the single node.
	resp3 := postCoord(t, hs.URL+"/v1/delete", server.DeleteRequest{IDs: []uint64{777_777}})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("missing delete status %d, want 404", resp3.StatusCode)
	}

	// Malformed bodies are rejected up front.
	for _, tc2 := range []struct {
		path string
		body string
	}{
		{"/v1/topn", `{nope`},
		{"/v1/topn", `{"weights":[1,1,1],"n":5,"frobnicate":true}`},
		{"/v1/insert", `{"records":[]}`},
		{"/v1/delete", `{"ids":[]}`},
	} {
		resp, err := http.Post(hs.URL+tc2.path, "application/json", bytes.NewReader([]byte(tc2.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc2.path, tc2.body, resp.StatusCode)
		}
	}
}

func TestCoordinatorHTTPHealthAndMetrics(t *testing.T) {
	recs := testRecords(t, 400, 3, 58)
	part, _ := NewHashPartitioner(2)
	tc := startTestCluster(t, part, recs, 2)
	coord, hs := startCoordinatorHTTP(t, tc, part, noProbe)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	code, body := get("/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Shards != 2 || len(h.ReadyReplicas) != 2 || h.ReadyReplicas[0] != 2 {
		t.Fatalf("health %+v", h)
	}
	if code, _ := get("/v1/healthz/live"); code != http.StatusOK {
		t.Fatalf("live status %d", code)
	}
	if code, _ := get("/v1/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready status %d", code)
	}

	// Mark one whole group not ready: ready flips 503, live stays 200.
	for _, r := range coord.groups[0].replicas {
		r.ready.Store(false)
	}
	if code, _ := get("/v1/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("ready with dark group: status %d, want 503", code)
	}
	if code, _ := get("/v1/healthz/live"); code != http.StatusOK {
		t.Fatalf("live with dark group: status %d, want 200", code)
	}

	// Metrics is a JSON document carrying the scatter-gather counters.
	_, body = get("/v1/metrics")
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"queries", "hedges_fired", "hedge_wins", "shard_0_latency_ms", "shard_1_failures"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
}
