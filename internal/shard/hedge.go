package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/shard/client"
)

// Hedged replica fan-out. The tail-latency problem it solves: a
// scatter-gather query is as slow as its slowest shard, so one replica
// in a GC pause or a page-cache miss drags the whole merge. The classic
// fix ("The Tail at Scale", reused here) is to give the primary replica
// a head start of HedgeDelay and then fire the same idempotent read at
// a backup; whichever answers first wins and the loser is cancelled
// through its context — bounded extra load (only queries slower than
// the delay hedge at all), big p99 cut.
//
// Failover is the error-driven cousin: a replica that answers with an
// error (connection refused, 503 from a recovering node) immediately
// forfeits to the next replica without waiting for the hedge timer.
// Both mechanisms share one launch order — ready replicas first, round-
// robin rotated — and one shard-level deadline.

// hedged runs call against the replicas of group gi until one
// succeeds, hedging after cfg.HedgeDelay and failing over on error.
// The returned error is the first failure when every replica failed.
// Safe only for idempotent reads: a call may execute on several
// replicas concurrently.
func hedged[T any](ctx context.Context, c *Coordinator, gi int, call func(context.Context, *client.Endpoint) (T, error)) (T, error) {
	var zero T
	g := c.groups[gi]
	order := g.order()
	if len(order) == 0 {
		// Every replica of the group is diverged: serving from any of
		// them would return data older than an acked write. Fail fast
		// rather than sitting on the shard deadline.
		return zero, fmt.Errorf("shard %d: every replica is diverged and awaiting resync", gi)
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	// Cancelling on return is what reels the losing replica back in:
	// its request context dies the moment the winner's response is
	// accepted, aborting the in-flight HTTP request server-side too
	// (onionserve's query walk is context-aware).
	defer cancel()

	type outcome struct {
		v   T
		err error
		idx int // index into order
	}
	// Buffered to len(order): a loser finishing after the winner must
	// never block on a channel nobody reads again.
	ch := make(chan outcome, len(order))
	launched := 0
	hedgedLaunch := make([]bool, len(order)) // launch i was timer-driven
	launch := func(viaTimer bool) {
		if launched >= len(order) {
			return
		}
		i := launched
		launched++
		hedgedLaunch[i] = viaTimer
		r := order[i]
		go func() {
			v, err := call(ctx, r.ep)
			// Passive readiness: transport-level failure marks the replica
			// not ready (the probe loop or a later success restores it). An
			// HTTP-level answer — even an error status — proves liveness.
			var se *client.StatusError
			if err == nil {
				r.ready.Store(true)
			} else if !errors.As(err, &se) && ctx.Err() == nil {
				r.ready.Store(false)
			}
			ch <- outcome{v: v, err: err, idx: i}
		}()
	}
	launch(false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if len(order) > 1 && c.cfg.HedgeDelay > 0 {
		hedgeTimer = time.NewTimer(c.cfg.HedgeDelay)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	failures := 0
	var firstErr error
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				if hedgedLaunch[out.idx] {
					c.metrics.hedgeWins.Add(1)
				}
				return out.v, nil
			}
			failures++
			if firstErr == nil {
				firstErr = out.err
			}
			if launched < len(order) {
				c.metrics.failovers.Add(1)
				launch(false)
			} else if failures == launched {
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(order) {
				c.metrics.hedgesFired.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			// Shard deadline or caller cancellation with no winner yet. The
			// in-flight calls will fail fast on the dead context and drain
			// into the buffered channel.
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			return zero, firstErr
		}
	}
}
