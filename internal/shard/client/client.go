// Package client is the shard-aware HTTP client the coordinator (and
// any Go program that wants to talk to onionserve directly) uses. One
// Endpoint wraps one onionserve base URL with a bounded connection
// pool, a per-request timeout, and retry-on-idempotent-read: queries
// and readiness probes are retried across transient transport failures
// because re-reading an immutable snapshot is free of side effects,
// while mutations are never retried by this layer — an insert that
// died mid-flight may have been applied, and blind retry would turn
// one network blip into a duplicate-ID error (or worse, a double
// apply under missing-ok deletes).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// Config tunes one endpoint. The zero value is ready to use.
type Config struct {
	// Timeout is the per-attempt deadline (dial + request + response
	// body). 0 means 10s; negative disables the client-side deadline
	// (the caller's context still applies).
	Timeout time.Duration
	// MaxConns bounds the connection pool to this endpoint — total
	// concurrent connections, established plus dialing. 0 means 32. The
	// bound is what keeps a coordinator fanning out to many shards from
	// holding file descriptors proportional to its query concurrency
	// times its shard count.
	MaxConns int
	// RetryReads is how many extra attempts an idempotent read gets
	// after a transport-level failure (connection refused, reset,
	// timeout dialing). 0 means 1; negative disables retry. HTTP-level
	// errors are never retried here: the server answered, and its
	// answer (400, 429, 503) is meaningful to the caller.
	RetryReads int
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxConns == 0 {
		c.MaxConns = 32
	}
	if c.RetryReads == 0 {
		c.RetryReads = 1
	}
	return c
}

// StatusError is a non-2xx answer from the server: the transport
// worked, the server decided. Callers branch on Code (e.g. the
// coordinator maps 503 from a recovering replica to "try the next
// one") and surface Msg, which carries the server's ErrorResponse.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server status %d: %s", e.Code, e.Msg)
}

// Endpoint is one onionserve node. Safe for concurrent use.
type Endpoint struct {
	base string
	cfg  Config
	hc   *http.Client
}

// New returns an endpoint for the given base URL (e.g.
// "http://10.0.0.7:8080", no trailing slash required).
func New(base string, cfg Config) *Endpoint {
	cfg = cfg.withDefaults()
	tr := &http.Transport{
		MaxConnsPerHost:     cfg.MaxConns,
		MaxIdleConnsPerHost: cfg.MaxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Endpoint{
		base: strings.TrimRight(base, "/"),
		cfg:  cfg,
		hc:   &http.Client{Transport: tr},
	}
}

// Base returns the endpoint's base URL.
func (e *Endpoint) Base() string { return e.base }

// TopN runs one top-N query. Idempotent: retried per Config.RetryReads.
func (e *Endpoint) TopN(ctx context.Context, req server.TopNRequest) (*server.TopNResponse, error) {
	var out server.TopNResponse
	if err := e.postJSON(ctx, "/v1/topn", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopNBatch runs a fused batch of queries. Idempotent: retried.
func (e *Endpoint) TopNBatch(ctx context.Context, req server.TopNBatchRequest) (*server.TopNBatchResponse, error) {
	var out server.TopNBatchResponse
	if err := e.postJSON(ctx, "/v1/topn/batch", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert submits records. Never retried (see the package comment).
func (e *Endpoint) Insert(ctx context.Context, recs []core.Record) (*server.MutateResponse, error) {
	req := server.InsertRequest{Records: make([]server.RecordJSON, len(recs))}
	for i, r := range recs {
		req.Records[i] = server.RecordJSON{ID: r.ID, Vector: r.Vector}
	}
	var out server.MutateResponse
	if err := e.postJSON(ctx, "/v1/insert", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete submits IDs for deletion. missingOK asks the server to skip
// (rather than reject) IDs it does not hold — the mode broadcast
// deletes rely on. Never retried.
func (e *Endpoint) Delete(ctx context.Context, ids []uint64, missingOK bool) (*server.MutateResponse, error) {
	req := server.DeleteRequest{IDs: ids, MissingOK: missingOK}
	var out server.MutateResponse
	if err := e.postJSON(ctx, "/v1/delete", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes GET /v1/healthz/ready. It reports true only for a 200:
// a 503 (recovering / still booting), a transport failure, and a
// pre-split server with no such route all count as not ready. Probes
// are not retried — the health loop that calls this is itself the
// retry.
func (e *Endpoint) Ready(ctx context.Context) bool {
	ctx, cancel := e.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.base+"/v1/healthz/ready", nil)
	if err != nil {
		return false
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		return false
	}
	defer drain(resp)
	return resp.StatusCode == http.StatusOK
}

// Metrics fetches the raw /v1/metrics JSON document.
func (e *Endpoint) Metrics(ctx context.Context) (json.RawMessage, error) {
	ctx, cancel := e.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	return body, nil
}

func (e *Endpoint) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, e.cfg.Timeout)
	}
	return ctx, func() {}
}

// postJSON performs one JSON POST with the endpoint's timeout, decoding
// a 2xx body into out and a non-2xx body into a *StatusError.
// idempotent requests are re-attempted on transport errors while the
// caller's context is still live.
func (e *Endpoint) postJSON(ctx context.Context, path string, in, out any, idempotent bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	attempts := 1
	if idempotent && e.cfg.RetryReads > 0 {
		attempts += e.cfg.RetryReads
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			// The caller gave up (hedge lost, deadline, client went away):
			// report the cancellation, not the last transport wobble.
			return err
		}
		lastErr = e.postOnce(ctx, path, body, out)
		if lastErr == nil {
			return nil
		}
		var se *StatusError
		if errors.As(lastErr, &se) {
			return lastErr // the server answered; retrying re-asks a settled question
		}
	}
	return lastErr
}

func (e *Endpoint) postOnce(ctx context.Context, path string, body []byte, out any) error {
	ctx, cancel := e.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode/100 != 2 {
		var eresp server.ErrorResponse
		msg := http.StatusText(resp.StatusCode)
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(b, &eresp) == nil && eresp.Error != "" {
				msg = eresp.Error
			}
		}
		return &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drain consumes and closes a response body so the bounded pool can
// reuse the connection instead of tearing it down.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
