package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

const topNBody = `{"results":[{"id":3,"score":1.5,"layer":2}],"stats":{"records_evaluated":4,"layers_accessed":2,"layers_pruned":1}}`

func TestTopNDecodesResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/topn" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		w.Write([]byte(topNBody))
	}))
	defer ts.Close()

	ep := New(ts.URL+"/", Config{}) // trailing slash must be tolerated
	resp, err := ep.TopN(context.Background(), server.TopNRequest{Weights: []float64{1}, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != 3 || resp.Results[0].Score != 1.5 {
		t.Fatalf("decoded %+v", resp.Results)
	}
	if resp.Stats.RecordsEvaluated != 4 || resp.Stats.LayersPruned != 1 {
		t.Fatalf("stats %+v", resp.Stats)
	}
}

func TestStatusErrorCarriesServerMessage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server overloaded"}`))
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{})
	_, err := ep.TopN(context.Background(), server.TopNRequest{Weights: []float64{1}, N: 1})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %v", err)
	}
	if se.Code != http.StatusTooManyRequests || se.Msg != "server overloaded" {
		t.Fatalf("got %+v", se)
	}
}

// TestReadsRetryTransportErrors: a read that dies at the transport
// level is retried; the server's request count proves the second
// attempt happened.
func TestReadsRetryTransportErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Kill the connection mid-response: a transport error, not an
			// HTTP answer.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		w.Write([]byte(topNBody))
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{RetryReads: 1})
	resp, err := ep.TopN(context.Background(), server.TopNRequest{Weights: []float64{1}, N: 1})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results %+v", resp.Results)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestMutationsNeverRetry: the same mid-flight death on a mutation is
// surfaced, not retried — a blind retry could double-apply.
func TestMutationsNeverRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hj := w.(http.Hijacker)
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{RetryReads: 3})
	_, err := ep.Insert(context.Background(), []core.Record{{ID: 1, Vector: []float64{1}}})
	if err == nil {
		t.Fatal("mutation over a dead connection succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d insert attempts, want exactly 1", got)
	}
}

// TestHTTPErrorsNeverRetry: the server answered; re-asking a settled
// question is not a retry policy.
func TestHTTPErrorsNeverRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad weights"}`))
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{RetryReads: 3})
	_, err := ep.TopN(context.Background(), server.TopNRequest{Weights: []float64{1}, N: 1})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want 400 StatusError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestCancelledContextStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hj := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		if conn != nil {
			conn.Close()
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ep := New(ts.URL, Config{RetryReads: 5})
	_, err := ep.TopN(ctx, server.TopNRequest{Weights: []float64{1}, N: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestReadyProbe(t *testing.T) {
	status := atomic.Int64{}
	status.Store(http.StatusOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz/ready" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{})
	if !ep.Ready(context.Background()) {
		t.Fatal("200 not reported ready")
	}
	status.Store(http.StatusServiceUnavailable)
	if ep.Ready(context.Background()) {
		t.Fatal("503 reported ready")
	}
	ts.Close()
	if ep.Ready(context.Background()) {
		t.Fatal("dead endpoint reported ready")
	}
}

func TestMetricsFetch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			t.Errorf("hit %s", r.URL.Path)
		}
		w.Write([]byte(`{"queries": 7}`))
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{})
	raw, err := ep.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"queries": 7}` {
		t.Fatalf("raw %q", raw)
	}
}

// TestTimeoutBoundsAttempts: with a short per-attempt timeout, a
// stalled server fails the call instead of hanging it.
func TestTimeoutBoundsAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client giving up (it
		// only watches for disconnect once the body is consumed) and the
		// deferred Close doesn't wait out the full stall.
		io.Copy(io.Discard, r.Body)
		select {
		case <-time.After(10 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	ep := New(ts.URL, Config{Timeout: 100 * time.Millisecond, RetryReads: -1})
	start := time.Now()
	_, err := ep.TopN(context.Background(), server.TopNRequest{Weights: []float64{1}, N: 1})
	if err == nil {
		t.Fatal("stalled server returned success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the attempt: %v", elapsed)
	}
}
