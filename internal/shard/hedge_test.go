package shard

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/shard/client"
)

// fakeReplica is a scripted onionserve stand-in for hedge-path tests:
// real servers cannot be told to stall until cancelled.
type fakeReplica struct {
	*httptest.Server
	started   chan struct{} // closed-ish: one send per request arrival
	cancelled chan struct{} // one send per request whose context died
}

const fakeTopNBody = `{"results":[{"id":1,"score":2.5,"layer":1}],"stats":{"records_evaluated":1,"layers_accessed":1,"layers_pruned":0}}`

// newFakeReplica serves /v1/topn with the given delay. A request that
// outlives its context reports on the cancelled channel instead of
// answering — exactly what a hedged loser should do.
func newFakeReplica(t *testing.T, delay time.Duration, status int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{
		started:   make(chan struct{}, 16),
		cancelled: make(chan struct{}, 16),
	}
	f.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body before stalling: the net/http server only starts
		// watching for client disconnect once the request body has been
		// consumed, and cancellation observability is the whole point of
		// this fake. (Real handlers decode the body up front.)
		io.Copy(io.Discard, r.Body)
		f.started <- struct{}{}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				f.cancelled <- struct{}{}
				return
			}
		}
		if status != http.StatusOK {
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"scripted failure"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(fakeTopNBody))
	}))
	t.Cleanup(f.Server.Close)
	return f
}

func newHedgeCoordinator(t *testing.T, cfg Config, replicas ...*fakeReplica) *Coordinator {
	t.Helper()
	part, err := NewHashPartitioner(1)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.URL
	}
	coord, err := New(part, [][]string{urls}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// TestHedgeFiresAndCancelsLoser is the tentpole's cancellation gate
// (run under -race by CI): a stalled primary must see its request
// context die once the hedged backup wins, and the hedge counters must
// attribute the win to the timer-driven launch.
func TestHedgeFiresAndCancelsLoser(t *testing.T) {
	slow := newFakeReplica(t, 10*time.Second, http.StatusOK) // replica 0: primary on the first fan-out
	fast := newFakeReplica(t, 0, http.StatusOK)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    10 * time.Millisecond,
		ProbeInterval: -1,
		// RetryReads off: a retried read would re-arrive at the slow
		// replica and double the started count bookkeeping.
		Client: client.Config{RetryReads: -1},
	}, slow, fast)

	res, err := coord.TopN(context.Background(), []float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || res.Results[0].ID != 1 || res.Results[0].Score != 2.5 {
		t.Fatalf("unexpected results: %+v", res.Results)
	}

	// The slow primary was reached, then cancelled when the backup won.
	select {
	case <-slow.started:
	case <-time.After(5 * time.Second):
		t.Fatal("primary never saw the request")
	}
	select {
	case <-slow.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing replica's request context was never cancelled")
	}
	if got := coord.metrics.hedgesFired.Value(); got != 1 {
		t.Fatalf("hedges fired = %d, want 1", got)
	}
	if got := coord.metrics.hedgeWins.Value(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
	if got := coord.metrics.failovers.Value(); got != 0 {
		t.Fatalf("failovers = %d, want 0 (timer-driven, not error-driven)", got)
	}
}

// TestHedgePrimaryWinStillCancelsBackup covers the mirror image: the
// primary answers after the hedge fired but before the backup; the
// backup must be cancelled and the win must NOT count as a hedge win.
func TestHedgePrimaryWinStillCancelsBackup(t *testing.T) {
	primary := newFakeReplica(t, 60*time.Millisecond, http.StatusOK)
	backup := newFakeReplica(t, 10*time.Second, http.StatusOK)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    10 * time.Millisecond,
		ProbeInterval: -1,
		Client:        client.Config{RetryReads: -1},
	}, primary, backup)

	if _, err := coord.TopN(context.Background(), []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-backup.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing backup's request context was never cancelled")
	}
	if got := coord.metrics.hedgesFired.Value(); got != 1 {
		t.Fatalf("hedges fired = %d, want 1", got)
	}
	if got := coord.metrics.hedgeWins.Value(); got != 0 {
		t.Fatalf("hedge wins = %d, want 0 (the primary won)", got)
	}
}

// TestFailoverOnError: an HTTP-level failure forfeits to the next
// replica immediately — no hedge timer involved — and an HTTP answer,
// even an error, must not mark the replica transport-dead.
func TestFailoverOnError(t *testing.T) {
	failing := newFakeReplica(t, 0, http.StatusInternalServerError)
	healthy := newFakeReplica(t, 0, http.StatusOK)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    time.Hour, // hedging effectively off: only failover can reach replica 1
		ProbeInterval: -1,
		Client:        client.Config{RetryReads: -1},
	}, failing, healthy)

	res, err := coord.TopN(context.Background(), []float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("results %+v", res.Results)
	}
	if got := coord.metrics.failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if got := coord.metrics.hedgesFired.Value(); got != 0 {
		t.Fatalf("hedges fired = %d, want 0", got)
	}
	// A 500 is an answer: the replica is alive, readiness must survive.
	if !coord.groups[0].replicas[0].ready.Load() {
		t.Fatal("HTTP-level error marked the replica transport-dead")
	}
}

// TestAllReplicasFail: the shard's terminal error is the first failure.
func TestAllReplicasFail(t *testing.T) {
	a := newFakeReplica(t, 0, http.StatusInternalServerError)
	b := newFakeReplica(t, 0, http.StatusBadGateway)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    -1,
		ProbeInterval: -1,
		Client:        client.Config{RetryReads: -1},
	}, a, b)

	_, err := coord.TopN(context.Background(), []float64{1, 1}, 1)
	if err == nil {
		t.Fatal("total failure returned success")
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("want the first replica's 500 as the terminal error, got %v", err)
	}
}

// TestHedgeDisabled: with HedgeDelay negative no backup ever fires; a
// slow primary is simply waited for.
func TestHedgeDisabled(t *testing.T) {
	slowish := newFakeReplica(t, 50*time.Millisecond, http.StatusOK)
	backup := newFakeReplica(t, 0, http.StatusOK)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    -1,
		ProbeInterval: -1,
		Client:        client.Config{RetryReads: -1},
	}, slowish, backup)

	if _, err := coord.TopN(context.Background(), []float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got := coord.metrics.hedgesFired.Value(); got != 0 {
		t.Fatalf("hedges fired = %d with hedging disabled", got)
	}
	select {
	case <-backup.started:
		t.Fatal("backup was contacted with hedging disabled and no failure")
	default:
	}
}

// TestShardTimeoutBoundsTheGroup: a group whose every replica stalls
// past ShardTimeout fails with the deadline, not a hang.
func TestShardTimeoutBoundsTheGroup(t *testing.T) {
	slow1 := newFakeReplica(t, 10*time.Second, http.StatusOK)
	slow2 := newFakeReplica(t, 10*time.Second, http.StatusOK)
	coord := newHedgeCoordinator(t, Config{
		HedgeDelay:    5 * time.Millisecond,
		ShardTimeout:  150 * time.Millisecond,
		ProbeInterval: -1,
		Client:        client.Config{RetryReads: -1},
	}, slow1, slow2)

	start := time.Now()
	_, err := coord.TopN(context.Background(), []float64{1, 1}, 1)
	if err == nil {
		t.Fatal("stalled group returned success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shard timeout did not bound the fan-out: %v", elapsed)
	}
}
