package shard

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// mapPartitioner places IDs exactly where a test says. It lets the tie
// tests enumerate shard assignments instead of hoping a hash lands
// tied records on different shards.
type mapPartitioner struct {
	shards int
	owner  map[uint64]int
}

func (p mapPartitioner) NumShards() int { return p.shards }
func (p mapPartitioner) Owner(id uint64, _ []float64) int {
	o, _ := p.OwnerByID(id)
	return o
}
func (p mapPartitioner) OwnerByID(id uint64) (int, bool) {
	if o, ok := p.owner[id]; ok {
		return o, true
	}
	return int(id) % p.shards, true
}

// TestCrossShardTieDeterminism is the determinism gate for exact score
// ties: records with identical vectors (hence bit-identical scores)
// are spread across shards in every possible assignment, per-shard
// indexes are built and queried at worker counts {1, 4}, and the merge
// must reproduce the one-node oracle bit for bit at every N — in
// particular at Ns that cut inside the tie run, where only the ID
// tie-break decides who makes the cut.
func TestCrossShardTieDeterminism(t *testing.T) {
	const (
		dim    = 3
		base   = 60
		tied   = 4
		shards = 3
		tiedLo = uint64(1000) // tied IDs: 1000..1003, above every base ID
		queryN = 8
	)
	pts := workload.Points(workload.Gaussian, base, dim, 5)
	recs := make([]core.Record, 0, base+tied)
	for i, p := range pts {
		recs = append(recs, core.Record{ID: uint64(i + 1), Vector: p})
	}
	// The tie group: one vector, far along the query direction so the
	// whole group ranks at the top, duplicated under distinct IDs.
	tieVec := []float64{3, 3, 3}
	for i := 0; i < tied; i++ {
		recs = append(recs, core.Record{ID: tiedLo + uint64(i), Vector: append([]float64(nil), tieVec...)})
	}
	weights := []float64{0.5, 0.3, 0.2}

	for _, workers := range []int{1, 4} {
		oracle, err := core.Build(recs, core.Options{Seed: 5, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int][]core.Result)
		for _, n := range []int{1, 2, 3, queryN} {
			res, _, err := oracle.TopN(weights, n)
			if err != nil {
				t.Fatal(err)
			}
			want[n] = res
		}
		// Sanity: the tie group really ties and really spans the top — the
		// test is vacuous otherwise.
		top := want[queryN]
		if top[0].ID != tiedLo || math.Float64bits(top[0].Score) != math.Float64bits(top[tied-1].Score) {
			t.Fatalf("tie group does not lead the ranking as constructed: %+v", top[:tied])
		}

		// Every assignment of the tie group to shards: tied^shards maps.
		assignments := 1
		for i := 0; i < tied; i++ {
			assignments *= shards
		}
		for a := 0; a < assignments; a++ {
			owner := make(map[uint64]int, tied)
			x := a
			for i := 0; i < tied; i++ {
				owner[tiedLo+uint64(i)] = x % shards
				x /= shards
			}
			part := mapPartitioner{shards: shards, owner: owner}
			parts := Partition(part, recs)
			perShard := make([][]core.Result, shards)
			for s, sr := range parts {
				six, err := core.Build(sr, core.Options{Seed: 5, Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := six.TopN(weights, queryN)
				if err != nil {
					t.Fatal(err)
				}
				perShard[s] = res
			}
			for _, n := range []int{1, 2, 3, queryN} {
				got := MergeTopN(perShard, n)
				if len(got) != len(want[n]) {
					t.Fatalf("workers=%d assignment=%d n=%d: %d results, want %d", workers, a, n, len(got), len(want[n]))
				}
				for i := range got {
					if got[i].ID != want[n][i].ID ||
						math.Float64bits(got[i].Score) != math.Float64bits(want[n][i].Score) {
						t.Fatalf("workers=%d assignment=%d n=%d rank %d: got (id=%d score=%x) want (id=%d score=%x)",
							workers, a, n, i,
							got[i].ID, math.Float64bits(got[i].Score),
							want[n][i].ID, math.Float64bits(want[n][i].Score))
					}
				}
			}
		}
	}
}
