package shard

import (
	"expvar"
	"fmt"

	"repro/internal/telemetry"
)

// Scatter-gather telemetry. Same conventions as internal/server: a
// per-coordinator expvar.Map (never the process-global registry, so
// tests and embedded coordinators don't collide) and
// telemetry.Histogram for every latency, so /v1/metrics on a
// coordinator reads like /v1/metrics on a shard — one shape end to
// end. The per-shard histograms are the operational payoff of the
// subsystem: tail latency of the merge is the max over shards, so the
// slow shard is visible by name, and the hedge fire/win counters say
// whether request hedging is actually buying its cost.
type metrics struct {
	queries          expvar.Int // /v1/topn fan-outs completed (incl. partial)
	batchRequests    expvar.Int // /v1/topn/batch fan-outs completed
	hedgesFired      expvar.Int // backup requests launched after HedgeDelay
	hedgeWins        expvar.Int // fan-outs where the backup answered first
	failovers        expvar.Int // replicas retried after an error (not hedge-timed)
	shardFailures    expvar.Int // shard groups that failed a fan-out entirely
	partialResults   expvar.Int // fan-outs answered with >=1 shard missing
	totalFailures    expvar.Int // fan-outs with zero shards answering
	insertOps        expvar.Int // insert requests routed
	deleteOps        expvar.Int // delete requests routed or broadcast
	writeFailures    expvar.Int // write fan-outs with >=1 replica failing
	probesPerformed  expvar.Int // readiness probes issued
	replicasNotReady expvar.Int // probes that found a replica not ready
	// replicaDivergence counts replicas that missed a write the group
	// acked and were pulled from the read rotation until resynced.
	replicaDivergence expvar.Int
	replicaResyncs    expvar.Int // diverged replicas drained back into rotation

	topnLatency  *telemetry.Histogram // whole fan-out+merge, /v1/topn
	batchLatency *telemetry.Histogram // whole fan-out+merge, /v1/topn/batch

	// perShard[g] tracks group g across every fan-out.
	perShard []shardMetrics

	vars *expvar.Map
}

// shardMetrics is one shard group's slice of the telemetry.
type shardMetrics struct {
	latency  *telemetry.Histogram // hedged group query, first success
	failures *expvar.Int          // fan-outs this group failed entirely
}

func newMetrics(shards int) *metrics {
	m := &metrics{
		topnLatency:  &telemetry.Histogram{},
		batchLatency: &telemetry.Histogram{},
		perShard:     make([]shardMetrics, shards),
	}
	v := new(expvar.Map).Init()
	v.Set("queries", &m.queries)
	v.Set("batch_requests", &m.batchRequests)
	v.Set("hedges_fired", &m.hedgesFired)
	v.Set("hedge_wins", &m.hedgeWins)
	v.Set("failovers", &m.failovers)
	v.Set("shard_failures", &m.shardFailures)
	v.Set("partial_results", &m.partialResults)
	v.Set("total_failures", &m.totalFailures)
	v.Set("insert_ops", &m.insertOps)
	v.Set("delete_ops", &m.deleteOps)
	v.Set("write_failures", &m.writeFailures)
	v.Set("probes_performed", &m.probesPerformed)
	v.Set("replicas_not_ready", &m.replicasNotReady)
	v.Set("shard_replica_divergence", &m.replicaDivergence)
	v.Set("shard_replica_resyncs", &m.replicaResyncs)
	v.Set("topn_latency_ms", expvar.Func(func() any { return m.topnLatency.Summary() }))
	v.Set("batch_latency_ms", expvar.Func(func() any { return m.batchLatency.Summary() }))
	for g := 0; g < shards; g++ {
		sm := shardMetrics{latency: &telemetry.Histogram{}, failures: new(expvar.Int)}
		m.perShard[g] = sm
		v.Set(fmt.Sprintf("shard_%d_latency_ms", g), expvar.Func(func() any { return sm.latency.Summary() }))
		v.Set(fmt.Sprintf("shard_%d_failures", g), sm.failures)
	}
	m.vars = v
	return m
}

// Vars exposes the coordinator's metric map (served on /v1/metrics).
func (c *Coordinator) Vars() *expvar.Map { return c.metrics.vars }
