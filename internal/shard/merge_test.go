package shard

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/topk"
)

// naiveMerge is the specification: concatenate, sort under the topk
// total order, truncate.
func naiveMerge(perShard [][]core.Result, n int) []core.Result {
	var all []core.Result
	for _, rs := range perShard {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		return topk.ResultGreater(all[i].Score, all[i].ID, all[j].Score, all[j].ID)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func sortedRanking(rng *rand.Rand, ids []uint64) []core.Result {
	rs := make([]core.Result, len(ids))
	for i, id := range ids {
		rs[i] = core.Result{ID: id, Score: rng.NormFloat64()}
	}
	sort.Slice(rs, func(i, j int) bool {
		return topk.ResultGreater(rs[i].Score, rs[i].ID, rs[j].Score, rs[j].ID)
	})
	return rs
}

func TestMergeTopNMatchesNaiveMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		shards := 1 + rng.Intn(6)
		perShard := make([][]core.Result, shards)
		id := uint64(1)
		for s := range perShard {
			ids := make([]uint64, rng.Intn(30))
			for i := range ids {
				ids[i] = id
				id++
			}
			perShard[s] = sortedRanking(rng, ids)
		}
		n := 1 + rng.Intn(40)
		got := MergeTopN(perShard, n)
		want := naiveMerge(perShard, n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMergeTopNEdgeCases(t *testing.T) {
	if got := MergeTopN(nil, 10); got != nil {
		t.Fatalf("nil shards: got %v", got)
	}
	if got := MergeTopN([][]core.Result{{}, {}}, 10); got != nil {
		t.Fatalf("empty shards: got %v", got)
	}
	one := [][]core.Result{{{ID: 1, Score: 2}}}
	if got := MergeTopN(one, 0); got != nil {
		t.Fatalf("n=0: got %v", got)
	}
	if got := MergeTopN(one, 5); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("n beyond total: got %v", got)
	}
}

// TestMergeTopNTieOrder pins the tie-break: equal scores across shards
// merge in ascending ID order regardless of which shard holds which.
func TestMergeTopNTieOrder(t *testing.T) {
	a := []core.Result{{ID: 4, Score: 1.0}, {ID: 5, Score: 0.5}}
	b := []core.Result{{ID: 2, Score: 1.0}, {ID: 9, Score: 1.0}}
	got := MergeTopN([][]core.Result{a, b}, 4)
	wantIDs := []uint64{2, 4, 9, 5}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("rank %d: got id %d, want %d (full: %+v)", i, got[i].ID, id, got)
		}
	}
}

func TestMergeStatsSums(t *testing.T) {
	got := MergeStats([]core.Stats{
		{RecordsEvaluated: 10, LayersAccessed: 2, LayersPruned: 1},
		{RecordsEvaluated: 7, LayersAccessed: 3, LayersPruned: 0},
	})
	if got.RecordsEvaluated != 17 || got.LayersAccessed != 5 || got.LayersPruned != 1 {
		t.Fatalf("got %+v", got)
	}
}
