package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard/client"
)

// The coordinator's HTTP surface mirrors onionserve's, deliberately:
// a client that can talk to one node can talk to a cluster by changing
// the URL. The coordinator-only extensions are additive — a "partial"
// opt-in on queries, "failed_shards" on degraded answers, and a
// cluster-shaped health document.

// TopNRequest is the body of POST /v1/topn on a coordinator: the
// single-node request plus the partial-results opt-in.
type TopNRequest struct {
	server.TopNRequest
	// Partial opts into degraded answers: when a shard group fails, the
	// response carries the exact merge over the surviving shards with
	// "partial":true and the failed shard list, instead of an error.
	Partial bool `json:"partial,omitempty"`
}

// TopNResponse is the coordinator's answer. Partial/FailedShards are
// present only on opted-in degraded answers.
type TopNResponse struct {
	server.TopNResponse
	Partial      bool  `json:"partial,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

// TopNBatchRequest is the batched form with the same opt-in.
type TopNBatchRequest struct {
	server.TopNBatchRequest
	Partial bool `json:"partial,omitempty"`
}

// TopNBatchResponse answers a batch; a failed shard is missing from
// every query of the batch, so the partial markers are response-level.
type TopNBatchResponse struct {
	server.TopNBatchResponse
	Partial      bool  `json:"partial,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

// ErrorResponse extends the single-node error body with the shards
// that caused it, so a client seeing a partial-result failure knows
// which groups were dark without parsing the message.
type ErrorResponse struct {
	Error        string `json:"error"`
	FailedShards []int  `json:"failed_shards,omitempty"`
}

// HealthResponse is the coordinator's health document: readiness per
// shard group rather than records per node.
type HealthResponse struct {
	OK     bool `json:"ok"`
	Ready  bool `json:"ready"`
	Shards int  `json:"shards"`
	// ReadyReplicas[g] counts replicas of group g currently believed
	// ready.
	ReadyReplicas []int `json:"ready_replicas"`
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topn", c.handleTopN)
	mux.HandleFunc("POST /v1/topn/batch", c.handleTopNBatch)
	mux.HandleFunc("POST /v1/insert", c.handleInsert)
	mux.HandleFunc("POST /v1/delete", c.handleDelete)
	mux.HandleFunc("GET /v1/metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	mux.HandleFunc("GET /v1/healthz/live", c.handleHealthz)
	mux.HandleFunc("GET /v1/healthz/ready", c.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// statusOf maps a fan-out error onto an HTTP status: a shard's own
// HTTP answer passes through (the coordinator adds no opinion), a
// transport-level failure is a gateway problem.
func statusOf(err error) int {
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadGateway
}

func (c *Coordinator) handleTopN(w http.ResponseWriter, r *http.Request) {
	var req TopNRequest
	if !decode(w, r, &req) {
		return
	}
	// Normalize predicates exactly like a single node: degenerate
	// constraints (no bounds) drop out, so an all-unbounded request takes
	// the ordinary unfiltered scatter; empty intervals 400 here rather
	// than fanning out a query that can only return nothing. The
	// coordinator doesn't know the corpus dimension (dim -1 skips that
	// check) — a bad attribute index is rejected by the first shard and
	// its 400 passes through statusOf.
	ranges, rngErr := server.NormalizeRanges(req.Ranges, -1)
	if rngErr != nil {
		writeErr(w, http.StatusBadRequest, "%v", rngErr)
		return
	}
	start := time.Now()
	res, err := c.TopNFiltered(r.Context(), req.Weights, req.N, ranges)
	c.metrics.topnLatency.Observe(time.Since(start))
	var perr *PartialError
	switch {
	case err == nil:
		// fall through to the full answer
	case errors.As(err, &perr) && req.Partial:
		// degraded-but-requested: fall through with markers
	case errors.As(err, &perr):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: perr.Error(), FailedShards: perr.Shards()})
		return
	default:
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	resp := TopNResponse{TopNResponse: toWire(res)}
	if len(res.Failed) > 0 {
		resp.Partial = true
		resp.FailedShards = res.Failed
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleTopNBatch(w http.ResponseWriter, r *http.Request) {
	var req TopNBatchRequest
	if !decode(w, r, &req) {
		return
	}
	start := time.Now()
	res, err := c.TopNBatch(r.Context(), req.Weights, req.N)
	c.metrics.batchLatency.Observe(time.Since(start))
	var perr *PartialError
	switch {
	case err == nil:
	case errors.As(err, &perr) && req.Partial:
	case errors.As(err, &perr):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: perr.Error(), FailedShards: perr.Shards()})
		return
	default:
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	resp := TopNBatchResponse{}
	resp.Queries = make([]server.TopNResponse, len(res.Queries))
	for q, tr := range res.Queries {
		resp.Queries[q] = toWire(&tr)
	}
	if len(res.Failed) > 0 {
		resp.Partial = true
		resp.FailedShards = res.Failed
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		writeErr(w, http.StatusBadRequest, "no records")
		return
	}
	recs := make([]core.Record, len(req.Records))
	for i, rec := range req.Records {
		recs[i] = core.Record{ID: rec.ID, Vector: rec.Vector}
	}
	applied, err := c.Insert(r.Context(), recs)
	if err != nil {
		writeErr(w, statusOf(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{Applied: applied})
}

func (c *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids")
		return
	}
	applied, err := c.Delete(r.Context(), req.IDs)
	if err != nil {
		status := statusOf(err)
		if errors.Is(err, core.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.MutateResponse{Applied: applied})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, c.metrics.vars.String())
}

func (c *Coordinator) health() HealthResponse {
	h := HealthResponse{
		OK:            true,
		Ready:         true,
		Shards:        len(c.groups),
		ReadyReplicas: make([]int, len(c.groups)),
	}
	for gi, g := range c.groups {
		for _, r := range g.replicas {
			if r.ready.Load() && !r.isDiverged() {
				h.ReadyReplicas[gi]++
			}
		}
		if h.ReadyReplicas[gi] == 0 {
			h.Ready = false
		}
	}
	return h
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.health())
}

func (c *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	h := c.health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// toWire converts a merged result into the single-node response shape.
func toWire(res *TopNResult) server.TopNResponse {
	rs := make([]server.ResultJSON, len(res.Results))
	for i, r := range res.Results {
		rs[i] = server.ResultJSON{ID: r.ID, Score: r.Score, Layer: r.Layer}
	}
	return server.TopNResponse{
		Results: rs,
		Stats: server.StatsJSON{
			RecordsEvaluated: res.Stats.RecordsEvaluated,
			LayersAccessed:   res.Stats.LayersAccessed,
			LayersPruned:     res.Stats.LayersPruned,
		},
	}
}

// wireResults converts wire results back into core results (the
// coordinator's merge works on core types so it shares the topk
// comparator with the single-node walk).
func wireResults(rs []server.ResultJSON) []core.Result {
	out := make([]core.Result, len(rs))
	for i, r := range rs {
		out[i] = core.Result{ID: r.ID, Score: r.Score, Layer: r.Layer}
	}
	return out
}

func wireStats(st server.StatsJSON) core.Stats {
	return core.Stats{
		RecordsEvaluated: st.RecordsEvaluated,
		LayersAccessed:   st.LayersAccessed,
		LayersPruned:     st.LayersPruned,
	}
}
