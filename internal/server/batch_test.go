package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestTopNBatchEndpointMatchesSolo(t *testing.T) {
	s, ts := newTestServer(t, 800, 3, Config{})
	batch := [][]float64{
		{0.5, 0.3, 0.2},
		{-1, 2, 0.5},
		{0, 0, 1}, // single-axis shape, still through the batch driver
		{0.5, 0.3, 0.2},
	}
	resp := postJSON(t, ts.URL+"/v1/topn/batch", TopNBatchRequest{Weights: batch, N: 12})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != len(batch) {
		t.Fatalf("%d query answers, want %d", len(got.Queries), len(batch))
	}
	for q, w := range batch {
		want, wantStats, err := s.Snapshot().TopN(w, 12)
		if err != nil {
			t.Fatal(err)
		}
		qr := got.Queries[q]
		if len(qr.Results) != len(want) {
			t.Fatalf("query %d: %d results, want %d", q, len(qr.Results), len(want))
		}
		for i, r := range qr.Results {
			if r.ID != want[i].ID || r.Score != want[i].Score || r.Layer != want[i].Layer {
				t.Fatalf("query %d rank %d: got %+v want %+v", q, i, r, want[i])
			}
		}
		if qr.Stats != statsJSON(wantStats) {
			t.Fatalf("query %d stats %+v, want %+v", q, qr.Stats, wantStats)
		}
	}
}

func TestTopNBatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 100, 2, Config{MaxInFlight: 4})
	for _, tc := range []struct {
		name   string
		body   any
		status int
	}{
		{"empty batch", TopNBatchRequest{N: 5}, http.StatusBadRequest},
		{"zero n", TopNBatchRequest{Weights: [][]float64{{1, 2}}}, http.StatusBadRequest},
		{"dim mismatch", TopNBatchRequest{Weights: [][]float64{{1, 2}, {1}}, N: 5}, http.StatusBadRequest},
		{"oversized", TopNBatchRequest{Weights: make([][]float64, 5), N: 5}, http.StatusBadRequest},
	} {
		resp := postJSON(t, ts.URL+"/v1/topn/batch", tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestTopNBatchErrorBodies pins the shape of batch failures: every
// client error is HTTP 400 (never a 500) carrying a typed JSON
// ErrorResponse, and per-query validation failures name the offending
// query's position. Raw JSON bodies are used so malformed payloads
// (out-of-range float literals standing in for non-finite weights) can
// be exercised end to end.
func TestTopNBatchErrorBodies(t *testing.T) {
	_, ts := newTestServer(t, 100, 2, Config{})
	for _, tc := range []struct {
		name    string
		body    string
		errWant string // substring the typed error must contain
	}{
		{"empty batch", `{"weights":[],"n":5}`, "no queries"},
		{"zero n", `{"weights":[[1,2]]}`, "n must be positive"},
		{"dim mismatch names query", `{"weights":[[1,2],[1]],"n":5}`, "batch query 1"},
		{"non-finite literal", `{"weights":[[1,1e999]],"n":5}`, "bad request body"},
		{"malformed json", `{"weights":[[1,2],"n":5}`, "bad request body"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/topn/batch", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var body ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not a typed ErrorResponse: %v", err)
			}
			if body.Error == "" || !strings.Contains(body.Error, tc.errWant) {
				t.Fatalf("error %q does not mention %q", body.Error, tc.errWant)
			}
		})
	}
}

// TestBatchQueriesDuringSnapshotSwaps is the -race stress of the batch
// read path: query goroutines continuously run TopNBatch against
// whatever snapshot is current while the mutator applies insert/delete
// batches and swaps new snapshots in (each publish rebuilds the
// columnar slabs). Every batch must be internally consistent with the
// snapshot it ran against — bit-identical to that snapshot's solo TopN.
func TestBatchQueriesDuringSnapshotSwaps(t *testing.T) {
	s, _ := newTestServer(t, 600, 3, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator load: a rolling window of inserts and deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := uint64(10_000)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			recs := []core.Record{
				{ID: id, Vector: []float64{float64(i%7) - 3, float64(i%5) - 2, float64(i % 3)}},
				{ID: id + 1, Vector: []float64{float64(i%4) - 2, float64(i%9) - 4, 1}},
			}
			if err := s.Insert(ctx, recs); err != nil {
				t.Errorf("insert: %v", err)
			}
			if i > 2 {
				if err := s.Delete(ctx, []uint64{id - 4, id - 3}); err != nil {
					t.Errorf("delete: %v", err)
				}
			}
			cancel()
			id += 2
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := [][]float64{
				{1, float64(g), 0.5},
				{-0.5, 0.25, float64(g) - 1},
				{0.1, -0.9, 0.3},
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				res, stats, err := snap.TopNBatch(batch, 8)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				// Spot-check one query of each batch against the solo path
				// on the SAME snapshot (the published index is immutable, so
				// this is exact, not racy).
				q := i % len(batch)
				want, wantStats, err := snap.TopN(batch[q], 8)
				if err != nil {
					t.Errorf("reader %d solo: %v", g, err)
					return
				}
				if fmt.Sprint(res[q]) != fmt.Sprint(want) || stats[q] != wantStats {
					t.Errorf("reader %d query %d: batch %v / %v, solo %v / %v",
						g, q, res[q], stats[q], want, wantStats)
					return
				}
				for _, rs := range res {
					for j := 1; j < len(rs); j++ {
						if rs[j].Score > rs[j-1].Score {
							t.Errorf("reader %d: results out of order", g)
							return
						}
					}
				}
			}
		}(g)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	if !s.Snapshot().Columnar() {
		t.Error("published snapshot lost its columnar slabs")
	}
}
