package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// postTopN issues one /v1/topn request and decodes the response.
func postTopN(t *testing.T, url string, w []float64, n int) TopNResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/topn", TopNRequest{Weights: w, N: n})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("topn status %d: %s", resp.StatusCode, b)
	}
	var out TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameAsCore compares wire results against core results bitwise (IDs,
// layers, and the exact float bits of every score).
func sameAsCore(got []ResultJSON, want []core.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Layer != want[i].Layer ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			return false
		}
	}
	return true
}

// TestCachedTopNPropertyBitIdentical sweeps dimensions, result depths,
// and mutation interleavings: every cached /v1/topn response must be
// bit-identical to a direct recomputation on the snapshot that is
// current at response time (single-threaded, so that snapshot is
// exactly the one that served the request).
func TestCachedTopNPropertyBitIdentical(t *testing.T) {
	for _, dim := range []int{2, 3} {
		dim := dim
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			s, ts := newTestServer(t, 400, dim, Config{CacheBytes: 1 << 20})
			rng := rand.New(rand.NewSource(int64(dim) * 17))
			pool := make([][]float64, 6)
			for i := range pool {
				w := make([]float64, dim)
				for j := range w {
					w[j] = rng.NormFloat64()
				}
				pool[i] = w
			}
			nextID := uint64(50_000)
			for step := 0; step < 250; step++ {
				switch rng.Intn(8) {
				case 0:
					v := make([]float64, dim)
					for j := range v {
						v[j] = rng.NormFloat64()
					}
					nextID++
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := s.Insert(ctx, []core.Record{{ID: nextID, Vector: v}})
					cancel()
					if err != nil {
						t.Fatal(err)
					}
				case 1:
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := s.Delete(ctx, []uint64{uint64(rng.Intn(400) + 1)})
					cancel()
					if err != nil && !strings.Contains(err.Error(), "not found") {
						t.Fatal(err)
					}
				default:
					w := pool[rng.Intn(len(pool))]
					n := 1 + rng.Intn(25)
					got := postTopN(t, ts.URL, w, n)
					want, _, err := s.Snapshot().TopN(w, n)
					if err != nil {
						t.Fatal(err)
					}
					if !sameAsCore(got.Results, want) {
						t.Fatalf("dim %d step %d n=%d: cached response diverges from snapshot recomputation", dim, step, n)
					}
				}
			}
			ct := s.cache.Counters()
			if ct.Hits == 0 || ct.Misses == 0 || ct.Invalidations == 0 {
				t.Fatalf("workload did not exercise the cache: %+v", ct)
			}
		})
	}
}

// TestCacheDisabledByteIdentical: with -cache-bytes=0 the server must
// answer byte-for-byte like a cache-enabled twin on every path — first
// touches (misses) and repeats (hits served from stored entries). Since
// the disabled path is the pre-cache code path, this pins "cache off ==
// old behavior" and "cache on == same bytes" in one test.
func TestCacheDisabledByteIdentical(t *testing.T) {
	_, tsOff := newTestServer(t, 300, 3, Config{CacheBytes: 0})
	_, tsOn := newTestServer(t, 300, 3, Config{CacheBytes: 1 << 20})

	rng := rand.New(rand.NewSource(42))
	pool := make([][]float64, 4)
	for i := range pool {
		w := make([]float64, 3)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		pool[i] = w
	}
	body := func(url string, w []float64, n int) []byte {
		resp := postJSON(t, url+"/v1/topn", TopNRequest{Weights: w, N: n})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Each weight is queried at a fixed n, repeatedly: pass 0 is all
	// misses on the cached server, later passes are hits. Stats of a hit
	// are the stored stats of the identical original computation, so even
	// the stats block must match byte-for-byte.
	for pass := 0; pass < 3; pass++ {
		for i, w := range pool {
			n := 5 + i
			off := body(tsOff.URL, w, n)
			on := body(tsOn.URL, w, n)
			if !bytes.Equal(off, on) {
				t.Fatalf("pass %d weights %d: bodies differ\noff: %s\non:  %s", pass, i, off, on)
			}
		}
	}
}

// TestNoStaleAfterAckedMutation is the freshness regression: once a
// mutation has been acknowledged, a subsequent query for a previously
// cached weight vector must observe it. The inserted record dominates
// the corpus, so serving any pre-insert entry is immediately visible.
func TestNoStaleAfterAckedMutation(t *testing.T) {
	s, ts := newTestServer(t, 300, 3, Config{CacheBytes: 1 << 20})
	w := []float64{1, 1, 1}
	const champ = uint64(9_999_999)

	for round := 0; round < 5; round++ {
		// Warm the cache for this weight vector.
		postTopN(t, ts.URL, w, 5)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := s.Insert(ctx, []core.Record{{ID: champ, Vector: []float64{1e6, 1e6, 1e6}}})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		got := postTopN(t, ts.URL, w, 5)
		if len(got.Results) == 0 || got.Results[0].ID != champ {
			t.Fatalf("round %d: acked insert not visible; top result %+v", round, got.Results)
		}
		// Warm again post-insert, then delete: the dominating record must
		// vanish from the very next answer.
		postTopN(t, ts.URL, w, 5)
		ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		err = s.Delete(ctx, []uint64{champ})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		got = postTopN(t, ts.URL, w, 5)
		for _, r := range got.Results {
			if r.ID == champ {
				t.Fatalf("round %d: acked delete not visible; stale champion served", round)
			}
		}
	}
	if s.cache.Counters().Invalidations < 10 {
		t.Fatalf("expected one invalidation per mutation, got %+v", s.cache.Counters())
	}
}

// TestBatchThroughCacheDedupAndHits: duplicate weight vectors inside a
// batch are computed once and answered identically; a repeat of the
// whole batch is served entirely from the cache, still bit-identical to
// solo recomputation.
func TestBatchThroughCacheDedupAndHits(t *testing.T) {
	s, ts := newTestServer(t, 500, 3, Config{CacheBytes: 1 << 20})
	batch := [][]float64{
		{0.5, 0.3, 0.2},
		{-1, 2, 0.5},
		{0.5, 0.3, 0.2}, // duplicate of query 0
		{0, 0, 1},
	}
	run := func() TopNBatchResponse {
		resp := postJSON(t, ts.URL+"/v1/topn/batch", TopNBatchRequest{Weights: batch, N: 10})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out TopNBatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	ct := s.cache.Counters()
	if ct.Misses != 4 || ct.Hits != 0 {
		t.Fatalf("first batch: counters %+v, want 4 misses 0 hits", ct)
	}
	second := run()
	ct = s.cache.Counters()
	if ct.Hits != 4 {
		t.Fatalf("repeat batch: counters %+v, want 4 hits", ct)
	}
	for q, w := range batch {
		want, _, err := s.Snapshot().TopN(w, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAsCore(first.Queries[q].Results, want) || !sameAsCore(second.Queries[q].Results, want) {
			t.Fatalf("batch query %d diverges from solo recomputation", q)
		}
	}
	// The duplicate must be byte-identical to its twin, stats included.
	a, _ := json.Marshal(first.Queries[0])
	b, _ := json.Marshal(first.Queries[2])
	if !bytes.Equal(a, b) {
		t.Fatalf("duplicate batch members differ: %s vs %s", a, b)
	}
}

// TestCachedQueriesDuringSnapshotSwaps is the -race stress of the
// cached read path, extending the batch-vs-swap pattern: a mutator
// inserts and deletes a trio of dominating sentinel records (acked each
// time) while readers hammer /v1/topn with a small weight pool (so
// cache hits and coalesced flights occur). Invariants:
//
//   - every response is internally consistent: either ALL live
//     sentinels of one publish lead the ranking, or NONE appear — a mix
//     would mean a torn or cross-snapshot answer;
//   - the mutator's own follow-up query after each acked mutation sees
//     it (no stale cached entry survives an acknowledged write);
//   - scores are non-increasing (the ordered-prefix contract).
func TestCachedQueriesDuringSnapshotSwaps(t *testing.T) {
	s, ts := newTestServer(t, 400, 3, Config{CacheBytes: 1 << 20})
	const sentinelBase = uint64(1) << 40
	trio := []core.Record{
		{ID: sentinelBase + 0, Vector: []float64{1e6, 1e6, 1e6}},
		{ID: sentinelBase + 1, Vector: []float64{2e6, 1e6, 1e6}},
		{ID: sentinelBase + 2, Vector: []float64{1e6, 2e6, 1e6}},
	}
	pool := [][]float64{{1, 1, 1}, {2, 1, 0.5}, {0.5, 0.5, 2}}

	// query posts one probe and validates the sentinel invariant; it
	// returns an error instead of failing so goroutines can report.
	query := func(w []float64, wantSentinels int) error {
		b, _ := json.Marshal(TopNRequest{Weights: w, N: 8})
		resp, err := http.Post(ts.URL+"/v1/topn", "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		var out TopNResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return err
		}
		seen := 0
		for i, r := range out.Results {
			if i > 0 && out.Results[i].Score > out.Results[i-1].Score {
				return fmt.Errorf("results out of order at rank %d", i)
			}
			if r.ID >= sentinelBase {
				seen++
			}
		}
		if seen != 0 && seen != len(trio) {
			return fmt.Errorf("torn answer: %d of %d sentinels visible", seen, len(trio))
		}
		if seen == len(trio) {
			// Dominating scores: the live trio must lead the ranking.
			for i := 0; i < len(trio); i++ {
				if out.Results[i].ID < sentinelBase {
					return fmt.Errorf("sentinels present but not leading at rank %d", i)
				}
			}
		}
		if wantSentinels >= 0 && seen != wantSentinels {
			return fmt.Errorf("stale answer: %d sentinels visible, want %d", seen, wantSentinels)
		}
		return nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: publish the trio, verify read-your-writes through the
	// cached path, retract it, verify again. Every cycle is two snapshot
	// swaps racing the readers' hits and flights.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := s.Insert(ctx, trio); err != nil {
				t.Errorf("insert: %v", err)
				cancel()
				return
			}
			cancel()
			if err := query(pool[i%len(pool)], len(trio)); err != nil {
				t.Errorf("post-insert read: %v", err)
				return
			}
			ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
			if err := s.Delete(ctx, []uint64{trio[0].ID, trio[1].ID, trio[2].ID}); err != nil {
				t.Errorf("delete: %v", err)
				cancel()
				return
			}
			cancel()
			if err := query(pool[(i+1)%len(pool)], 0); err != nil {
				t.Errorf("post-delete read: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// -1: concurrent readers cannot know which snapshot they
				// get, only that it must be internally consistent.
				if err := query(pool[(g+i)%len(pool)], -1); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	ct := s.cache.Counters()
	if ct.Hits == 0 || ct.Invalidations == 0 {
		t.Errorf("stress did not exercise the cached path: %+v", ct)
	}
}
