// Package server turns an Onion index into a concurrent network query
// service. The paper positions the index as the engine behind
// interactive top-N model-based queries (Section 1: e-commerce ranking,
// multimedia search); this package supplies the serving shape those
// applications assume, using only the standard library.
//
// # Concurrency model: snapshot isolation
//
// The core index is mutable but not safe for concurrent query +
// maintenance use. Rather than wrap it in locks — which would stall
// every query behind each hull-rebuilding cascade — the server keeps
// the current index behind an atomic.Pointer. Queries load the pointer
// once and run entirely against that immutable snapshot; they never
// block and never observe a partially applied change. All mutations
// funnel through a single mutator goroutine that coalesces pending
// operations into a batch, applies them to a private Clone of the
// current snapshot (reusing the batch cascades of core's maintain.go),
// and publishes the result with one pointer swap. Readers see either
// the old snapshot or the new one — never a torn index.
//
// The trade-off versus fine-grained locking: mutations pay a full
// index copy (O(n) pointers, not O(n) vectors — attribute data is
// shared) and queries may serve slightly stale data during a rebuild,
// but the query path is wait-free and the mutation path amortizes its
// cost across every operation coalesced into the batch. For a
// read-dominated top-N service this is the right corner of the space.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/wal"
)

// Config tunes the server. The zero value is ready to use.
type Config struct {
	// MaxInFlight caps concurrently admitted queries; further requests
	// are rejected with 429 so that overload degrades crisply instead of
	// queueing without bound. 0 means 64.
	MaxInFlight int
	// MaxBatchOps bounds how many pending mutations the mutator folds
	// into one snapshot rebuild. 0 means 32.
	MaxBatchOps int
	// QueryTimeout is the per-request deadline applied to query
	// endpoints when the client supplies none. 0 means 30s; negative
	// disables the default deadline.
	QueryTimeout time.Duration
	// MaxResults caps the n of /v1/topn and the limit of /v1/search
	// (0 = unlimited). A cap keeps one greedy client from turning a
	// top-N service into a full-sort service.
	MaxResults int
	// WAL, when non-nil, makes mutations durable: the mutator hands
	// every applied batch to CommitBatch — one group commit, so a single
	// fsync covers every operation coalesced into the batch — before the
	// snapshot containing it is published. If the commit fails, the
	// snapshot is not published and every operation in the batch is
	// failed back to its caller: nothing is ever acknowledged that would
	// not survive a crash. Typically a *wal.Manager.
	WAL wal.Committer
	// CacheBytes bounds the weight-keyed top-N result cache consulted by
	// /v1/topn and /v1/topn/batch (/v1/search streams bypass it): an LRU
	// from canonical weight bytes to top-K results with singleflight
	// coalescing and epoch invalidation tied to the snapshot swap (see
	// package cache). 0 disables caching entirely — the query path is
	// then byte-identical to a cacheless server.
	CacheBytes int64
	// CacheShards splits the result cache into independently locked
	// shards. 0 means 8.
	CacheShards int
	// DeltaThreshold is the pending-mutation count (delta inserts plus
	// tombstones) at which the mutator schedules a background
	// compaction folding the delta buffer back into the layered base.
	// With the incremental write path (the default), mutations land in
	// an unlayered delta buffer on an O(delta) shallow clone and are
	// merged into every query on the total order, so publish latency is
	// independent of corpus size; compaction re-hulls off the publish
	// path. 0 means 4096. Negative disables the delta path entirely:
	// every batch deep-clones and re-cascades synchronously (the
	// pre-delta behavior, kept for comparison and for workloads that
	// want every snapshot fully layered).
	DeltaThreshold int
	// Shells enables the spherical-shell index mode (paper Section 6)
	// on the served index: each layer's columnar slab is ordered by
	// angular bucket around the layer centroid and queries evaluate
	// only the buckets whose score bound can still matter. Answers are
	// bit-identical with shells on or off; the shells_* metrics report
	// the work skipped. Snapshot publishes and background compactions
	// keep the tables current.
	Shells bool
	// Pruning selects the bound-based pruning mode of the query path
	// (core.PruneAll, PruneLayersOnly, PruneNothing). The zero value is
	// full pruning; the weaker modes exist for paper-faithful work
	// measurements, never for correctness.
	Pruning core.PruningMode
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxInFlight == 0 {
		out.MaxInFlight = 64
	}
	if out.MaxBatchOps == 0 {
		out.MaxBatchOps = 32
	}
	if out.QueryTimeout == 0 {
		out.QueryTimeout = 30 * time.Second
	}
	if out.DeltaThreshold == 0 {
		out.DeltaThreshold = 4096
	}
	return out
}

// ErrClosed is returned by mutations submitted after Close.
var ErrClosed = errors.New("server: shutting down")

// op is one mutation travelling to the mutator goroutine. Exactly one
// of insert/del is set. reply is buffered (capacity 1) so the mutator
// never blocks on an abandoned caller.
type op struct {
	insert []core.Record
	del    []uint64
	// delMissingOK makes the delete skip IDs the index does not hold
	// (and deduplicate the batch) instead of rejecting the whole
	// operation — the mode a shard coordinator's broadcast deletes
	// rely on: every shard deletes the IDs it owns and ignores the
	// rest. The effective set is resolved against the clone being
	// mutated, so it is exact even against concurrent earlier ops in
	// the same batch.
	delMissingOK bool
	reply        chan opResult
}

// opResult answers one op: how many records the operation actually
// touched (inserts: all-or-nothing; missing-ok deletes: the subset
// present) and its error.
type opResult struct {
	applied int
	err     error
}

// Server serves linear optimization queries over one Onion index.
// Create with New; it is ready immediately. Close stops the mutator.
type Server struct {
	cfg  Config
	snap atomic.Pointer[core.Index]
	sem  chan struct{} // admission tokens for query endpoints
	ops  chan op
	done chan struct{} // closed when the mutator exits

	mu     sync.RWMutex // guards closed + sends on ops
	closed bool

	// cache is the weight-keyed result cache (nil when disabled). Its
	// epoch is bumped by apply after every snapshot publish, before the
	// mutation callers are released — the ordering that guarantees an
	// acknowledged write is never followed by a stale cached read.
	cache *cache.Cache

	// ready gates GET /v1/healthz/ready (liveness is unconditional). A
	// freshly constructed server is ready; boot orchestration that
	// exposes the port before recovery finishes, or an operator
	// draining a node, flips it with SetReady. A shard coordinator
	// excludes not-ready replicas from query fan-out.
	ready atomic.Bool

	// Background compaction state, touched only by the mutator
	// goroutine (the compaction worker communicates through compactCh):
	// compacting marks a CompactedClone in flight, and journal records
	// every mutation published since that clone's base snapshot, so the
	// compacted index can be brought up to date by replaying it through
	// the delta buffer before it is swapped in.
	compacting bool
	journal    []wal.Mutation
	compactCh  chan *core.Index

	metrics *metrics
}

// SetReady flips the readiness state reported by /v1/healthz/ready.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// New wraps ix in a serving layer. The caller must not mutate ix after
// handing it over; the server owns it from here on.
func New(ix *core.Index, cfg Config) *Server {
	c := cfg.withDefaults()
	s := &Server{
		cfg:       c,
		sem:       make(chan struct{}, c.MaxInFlight),
		ops:       make(chan op, 4*c.MaxBatchOps),
		done:      make(chan struct{}),
		cache:     cache.New(c.CacheBytes, c.CacheShards),
		compactCh: make(chan *core.Index, 1),
		metrics:   newMetrics(),
	}
	s.metrics.attachCache(s.cache)
	s.metrics.attachSnapshot(func() *core.Index { return s.snap.Load() })
	s.metrics.dim = ix.Dim()
	// Pruning configuration is applied once here; clones (deep, shallow
	// and compacted alike) inherit the mode and the rebuilt structures,
	// so every published snapshot serves with the same behavior. Shells
	// only enables: an index handed over with shell mode already on
	// keeps it under a zero Config.
	ix.SetPruningMode(c.Pruning)
	if c.Shells {
		ix.SetShellPruning(true)
	}
	s.snap.Store(ix)
	s.ready.Store(true)
	go s.mutator()
	return s
}

// Snapshot returns the current immutable index. Callers may query it
// freely and indefinitely; it is never mutated after publication.
func (s *Server) Snapshot() *core.Index { return s.snap.Load() }

// Insert submits records for insertion and waits for the batch that
// contains them to be applied (or ctx to expire — the mutation may
// still be applied after an early return).
func (s *Server) Insert(ctx context.Context, recs []core.Record) error {
	_, err := s.submit(ctx, op{insert: recs, reply: make(chan opResult, 1)})
	return err
}

// Delete submits IDs for deletion, with Insert's semantics. Every ID
// must exist; a missing ID fails the whole operation.
func (s *Server) Delete(ctx context.Context, ids []uint64) error {
	_, err := s.submit(ctx, op{del: ids, reply: make(chan opResult, 1)})
	return err
}

// DeleteIfPresent deletes the subset of ids the index currently holds
// (duplicates collapsed) and returns how many were actually removed.
// Unknown IDs are skipped, not errors — the semantics a coordinator's
// broadcast delete needs, where each shard owns only part of the set.
func (s *Server) DeleteIfPresent(ctx context.Context, ids []uint64) (int, error) {
	return s.submit(ctx, op{del: ids, delMissingOK: true, reply: make(chan opResult, 1)})
}

func (s *Server) submit(ctx context.Context, o op) (int, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, ErrClosed
	}
	// Send while holding the read lock so Close cannot close(ops) between
	// the flag check and the send. The mutator drains continuously, so
	// the send cannot block for long.
	s.ops <- o
	s.mu.RUnlock()
	select {
	case res := <-o.reply:
		return res.applied, res.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Close stops accepting mutations, waits for the mutator to drain and
// apply everything already queued, and returns. Queries against
// already-loaded snapshots remain valid forever; the HTTP layer is shut
// down separately (http.Server.Shutdown).
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ops)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// mutator is the single goroutine through which every index mutation
// flows. It coalesces queued operations, applies them to a clone, and
// publishes the clone with one atomic swap. Finished background
// compactions also return here, so the snapshot chain stays linear: a
// compacted index is reconciled with the journal and published between
// mutation batches, never concurrently with one.
func (s *Server) mutator() {
	defer close(s.done)
	for {
		select {
		case o, ok := <-s.ops:
			if !ok {
				s.drainCompaction()
				return
			}
			batch := []op{o}
		coalesce:
			for len(batch) < s.cfg.MaxBatchOps {
				select {
				case o2, ok := <-s.ops:
					if !ok {
						s.apply(batch)
						s.drainCompaction()
						return
					}
					batch = append(batch, o2)
				default:
					break coalesce
				}
			}
			s.apply(batch)
		case compacted := <-s.compactCh:
			s.finishCompaction(compacted)
		}
	}
}

// drainCompaction waits out in-flight background compactions during
// shutdown and publishes them, so Close never abandons a worker's
// result and a checkpoint-on-shutdown sees the most compact snapshot.
// A loop, not a single receive: finishCompaction chains a next round
// when the journal refilled the delta past the threshold, and that
// round converges fast (no new mutations arrive after Close).
func (s *Server) drainCompaction() {
	for s.compacting {
		s.finishCompaction(<-s.compactCh)
	}
}

// apply runs one batch: clone once, apply each operation in arrival
// order, swap once, then release the callers. Replies are sent only
// after the swap so a caller that saw success can immediately read its
// own write.
//
// Each op must be individually atomic in the published snapshot, but
// InsertBatch/DeleteBatch do not guarantee that on the index itself:
// their cascades can fail after allocations and layer truncation,
// leaving the clone partially mutated. When an op errors, the clone is
// therefore discarded and rebuilt from the published base by replaying
// the ops that already succeeded — replay on identical state is
// deterministic (hull joggling is seeded), so they succeed again. The
// happy path still pays exactly one clone.
func (s *Server) apply(batch []op) {
	start := time.Now()
	deltaMode := s.cfg.DeltaThreshold >= 0
	base := s.snap.Load()
	var next *core.Index
	if deltaMode {
		// O(delta) publish: the shallow clone shares every base array and
		// mutations land in the delta buffer, so this batch costs its own
		// size, not the corpus's. The delta mutators are individually
		// atomic (validate-all-then-apply), so a failed op simply leaves
		// the clone as the previous op left it — no replay needed.
		next = base.CloneDelta()
	} else {
		next = base.Clone()
	}
	results := make([]opResult, len(batch))
	// effDel[i] is the delete set op i actually applied: for missing-ok
	// deletes, the present subset resolved against the clone being
	// mutated. The WAL logs this effective set, not the requested one —
	// logging skipped IDs would make crash replay fail on not-found.
	effDel := make([][]uint64, len(batch))
	applied := 0
	applyOp := func(ix *core.Index, i int, o op) (int, error) {
		switch {
		case len(o.insert) > 0:
			var err error
			if deltaMode {
				err = ix.InsertDelta(o.insert)
			} else {
				err = ix.InsertBatch(o.insert)
			}
			if err != nil {
				return 0, err
			}
			return len(o.insert), nil
		case len(o.del) > 0:
			ids := o.del
			if o.delMissingOK {
				ids = presentIDs(ix, o.del)
				if len(ids) == 0 {
					effDel[i] = nil
					return 0, nil
				}
			}
			var err error
			if deltaMode {
				_, err = ix.DeleteDelta(ids, false)
			} else {
				err = ix.DeleteBatch(ids)
			}
			if err != nil {
				effDel[i] = nil
				return 0, err
			}
			effDel[i] = ids
			return len(ids), nil
		}
		return 0, nil
	}
	for i, o := range batch {
		n, err := applyOp(next, i, o)
		results[i] = opResult{applied: n, err: err}
		if err == nil && n > 0 {
			applied++
		}
		s.metrics.mutationOps.Add(1)
		if err != nil {
			s.metrics.mutationErrors.Add(1)
			if !deltaMode {
				// InsertBatch/DeleteBatch cascades can fail after partial
				// mutation; discard the torn clone and replay the survivors.
				next = base.Clone()
				for j := 0; j < i; j++ {
					if results[j].err == nil {
						applyOp(next, j, batch[j])
					}
				}
			}
		}
	}
	// Legacy mode invalidated the clone's columnar slabs; rebuild them
	// off the query path so every published snapshot serves through the
	// cache-friendly layout. Delta mode shares the base's slabs — they
	// still describe the (untouched) base layers — so there is nothing
	// to rebuild: that O(n) pass is exactly what the delta path removes
	// from publish latency.
	if applied > 0 && !deltaMode {
		next.BuildSlabs()
	}
	// The WAL frames and the compaction journal both carry the batch's
	// surviving operations in their effective form.
	var muts []wal.Mutation
	if applied > 0 && (s.cfg.WAL != nil || deltaMode) {
		muts = make([]wal.Mutation, 0, applied)
		for i, o := range batch {
			if results[i].err != nil || results[i].applied == 0 {
				continue
			}
			switch {
			case len(o.insert) > 0:
				muts = append(muts, wal.Mutation{Insert: o.insert})
			case len(o.del) > 0:
				muts = append(muts, wal.Mutation{Delete: effDel[i]})
			}
		}
	}
	// Durability barrier: the batch's surviving operations are logged
	// and (per the manager's fsync mode) forced to stable storage in one
	// group commit before the snapshot becomes visible. A failed commit
	// aborts the publish — callers must never see success for a write
	// that would not be replayed after a crash.
	if applied > 0 && s.cfg.WAL != nil {
		commitStart := time.Now()
		if err := s.cfg.WAL.CommitBatch(muts, next); err != nil {
			s.metrics.walCommitErrors.Add(1)
			for i := range batch {
				if results[i].err == nil {
					results[i].err = fmt.Errorf("server: wal commit: %w", err)
				}
			}
			applied = 0
		} else {
			s.metrics.walCommits.Add(1)
			s.metrics.walCommitLatency.Observe(time.Since(commitStart))
		}
	}
	if applied > 0 {
		s.snap.Store(next)
		// Cache epoch bump strictly between the snapshot publish and the
		// caller replies: queries read the epoch before loading their
		// snapshot, so bumping after the store makes it impossible to tag
		// an old-snapshot result with the new epoch, and bumping before
		// the replies means any query admitted after a mutation was
		// acknowledged sees the new epoch and rejects every pre-swap
		// entry. See the cache package comment for the full argument.
		s.cache.Invalidate()
		s.metrics.snapshotSwaps.Add(1)
		s.metrics.rebuildNanos.Add(time.Since(start).Nanoseconds())
		s.metrics.mutateLatency.Observe(time.Since(start))
		if deltaMode {
			if s.compacting {
				// A compaction is folding an older base; journal this batch
				// so the compacted index can catch up before it is published.
				s.journal = append(s.journal, muts...)
			}
			s.maybeStartCompaction(next)
		}
	}
	for i, o := range batch {
		o.reply <- results[i]
	}
}

// maybeStartCompaction launches a background fold of cur's delta
// buffer into its layered base once the buffer crosses the threshold.
// The CompactedClone runs off the mutator goroutine — queries keep
// serving cur, mutations keep publishing O(delta) batches on top of it
// — and the result returns through compactCh to finishCompaction.
func (s *Server) maybeStartCompaction(cur *core.Index) {
	if s.compacting || s.cfg.DeltaThreshold <= 0 || cur.DeltaLen() < s.cfg.DeltaThreshold {
		return
	}
	s.compacting = true
	s.journal = nil
	go func() {
		compacted, err := cur.CompactedClone()
		if err != nil {
			s.metrics.compactionErrors.Add(1)
			compacted = nil
		}
		s.compactCh <- compacted
	}()
}

// finishCompaction reconciles a finished background compaction with
// the mutations published while it ran (replayed through the delta
// buffer — the compacted base is logically identical to the journal's
// base snapshot, so replay cannot fail) and swaps it in. The publish
// bumps the cache epoch like any other swap: compaction changes Layer
// assignments, and a cached result must never mix layerings. No WAL
// frame is written — compaction changes no logical content, and crash
// recovery replays the same operations onto whatever checkpoint exists.
func (s *Server) finishCompaction(compacted *core.Index) {
	start := time.Now()
	journal := s.journal
	s.journal = nil
	s.compacting = false
	if compacted == nil {
		return // compaction failed; keep serving the delta-carrying chain
	}
	for _, m := range journal {
		var err error
		switch {
		case len(m.Insert) > 0:
			err = compacted.InsertDelta(m.Insert)
		case len(m.Delete) > 0:
			_, err = compacted.DeleteDelta(m.Delete, false)
		}
		if err != nil {
			// Cannot happen while the journal invariant holds; refuse to
			// publish a snapshot that lost a mutation and keep the current
			// (correct, merely uncompacted) chain.
			s.metrics.compactionErrors.Add(1)
			return
		}
	}
	s.snap.Store(compacted)
	s.cache.Invalidate()
	s.metrics.snapshotSwaps.Add(1)
	s.metrics.compactions.Add(1)
	s.metrics.compactLatency.Observe(time.Since(start))
	// The journal may have refilled the delta past the threshold while
	// the fold ran; start the next round immediately.
	s.maybeStartCompaction(compacted)
}

// presentIDs returns the IDs the index currently holds, in request
// order, duplicates collapsed — the effective set of a missing-ok
// delete.
func presentIDs(ix *core.Index, ids []uint64) []uint64 {
	out := make([]uint64, 0, len(ids))
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, ok := ix.LayerOf(id); ok {
			out = append(out, id)
		}
	}
	return out
}

// admit reserves an admission slot, reporting false on saturation.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		s.metrics.inflight.Add(1)
		return true
	default:
		s.metrics.queriesRejected.Add(1)
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	s.metrics.inflight.Add(-1)
}
