package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSnapshotIsolationStress is the reader/writer acceptance test: N
// goroutines hammer TopN and progressive Search against snapshots while
// one writer inserts and deletes a sentinel batch through the server's
// mutator path. Every response must be internally rank-ordered, and —
// because each batch is applied to a private clone and published with
// one pointer swap — no query may ever observe a half-applied batch:
// queries see either all sentinels or none. Run under -race.
func TestSnapshotIsolationStress(t *testing.T) {
	const (
		baseN     = 1500
		sentinels = 8
		readers   = 6
		cycles    = 25
	)
	ix := buildIndex(t, baseN, 2, 7) // Gaussian: |score| ≪ sentinel scores
	s := New(ix, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Sentinel batch: scores so large that, when present, all of them
	// occupy the top ranks for the probe weights.
	batch := make([]core.Record, sentinels)
	ids := make([]uint64, sentinels)
	sentinelID := func(id uint64) bool { return id >= 1<<40 }
	for i := range batch {
		id := uint64(1<<40 + i)
		ids[i] = id
		batch[i] = core.Record{ID: id, Vector: []float64{500 + float64(i), 500 - 0.5*float64(i)}}
	}
	probe := []float64{1, 1}

	var stop atomic.Bool
	var queries atomic.Int64
	errc := make(chan error, readers+2)
	var wg sync.WaitGroup
	// The writer waits until every reader has completed one query so the
	// mutation cycles genuinely overlap with concurrent reads.
	var ready sync.WaitGroup
	ready.Add(readers + 1)

	checkResults := func(res []core.Result) error {
		seen := 0
		for i, r := range res {
			if i > 0 && r.Score > res[i-1].Score {
				return errf("rank order violated at %d: %v after %v", i, r, res[i-1])
			}
			if sentinelID(r.ID) {
				seen++
			}
		}
		if seen != 0 && seen != sentinels {
			return errf("torn batch: saw %d of %d sentinels in %v", seen, sentinels, res)
		}
		return nil
	}

	// Readers: direct snapshot queries (the server's own query path).
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			first := true
			defer func() {
				if first {
					ready.Done() // unblock the writer even on an early error
				}
			}()
			for !stop.Load() {
				snap := s.Snapshot()
				if rng.Intn(2) == 0 {
					res, _, err := snap.TopN(probe, sentinels)
					if err != nil {
						errc <- err
						return
					}
					if err := checkResults(res); err != nil {
						errc <- err
						return
					}
				} else {
					sr := snap.NewSearcher(probe, sentinels)
					var res []core.Result
					for {
						r, ok := sr.Next()
						if !ok {
							break
						}
						res = append(res, r)
					}
					if err := checkResults(res); err != nil {
						errc <- err
						return
					}
				}
				queries.Add(1)
				if first {
					first = false
					ready.Done()
				}
			}
		}(int64(g))
	}

	// One HTTP-level reader exercises the full handler stack.
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		defer func() {
			if first {
				ready.Done()
			}
		}()
		body, _ := json.Marshal(TopNRequest{Weights: probe, N: sentinels})
		for !stop.Load() {
			resp, err := http.Post(ts.URL+"/v1/topn", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			var tr TopNResponse
			err = json.NewDecoder(resp.Body).Decode(&tr)
			resp.Body.Close()
			if err != nil {
				errc <- err
				return
			}
			res := make([]core.Result, len(tr.Results))
			for i, r := range tr.Results {
				res[i] = core.Result{ID: r.ID, Score: r.Score, Layer: r.Layer}
			}
			if err := checkResults(res); err != nil {
				errc <- err
				return
			}
			queries.Add(1)
			if first {
				first = false
				ready.Done()
			}
		}
	}()

	// Writer: insert the whole batch, delete the whole batch, repeat —
	// through the mutator, like /v1/insert and /v1/delete do.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		ready.Wait() // every reader is live before the first mutation
		ctx := context.Background()
		for c := 0; c < cycles; c++ {
			if err := s.Insert(ctx, batch); err != nil {
				errc <- errf("cycle %d insert: %v", c, err)
				return
			}
			if err := s.Delete(ctx, ids); err != nil {
				errc <- errf("cycle %d delete: %v", c, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if q := queries.Load(); q == 0 {
		t.Fatal("no reader queries completed during the stress window")
	}
	if swaps := s.metrics.snapshotSwaps.Value(); swaps == 0 {
		t.Fatal("no snapshot swaps recorded")
	}
	// The index must be exactly back to its base contents.
	snap := s.Snapshot()
	if snap.Len() != baseN {
		t.Fatalf("final length %d, want %d", snap.Len(), baseN)
	}
	for _, id := range ids {
		if _, ok := snap.LayerOf(id); ok {
			t.Fatalf("sentinel %d survived", id)
		}
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf("stress: "+format, args...)
}
