package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/workload"
)

// TestHierarchicalCompactionUnderLoad is the serving-layer gate for the
// per-cluster compactor: the exact reader/writer script of
// TestCompactionFoldsDeltaUnderLoad, but with a hierarchy.Compactor
// attached to the boot index, so every background fold re-peels only
// affected clusters. The server's publish path is untouched by design —
// this test proves the swap-in is invisible: folds land (metrics),
// never error, the compactor survives every publish, and the final
// snapshot is content- and ranking-identical to a ground-up rebuild.
func TestHierarchicalCompactionUnderLoad(t *testing.T) {
	const n, d = 400, 3
	base := buildIndex(t, n, d, 31)
	if _, err := hierarchy.Attach(base, hierarchy.CompactorOptions{Clusters: 6, Seed: 31}); err != nil {
		t.Fatalf("attach: %v", err)
	}
	s := New(base, Config{DeltaThreshold: 16, CacheBytes: 1 << 20})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := []float64{0.2 + float64(r)*0.3, 0.5, 0.3}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := s.Snapshot().TopN(w, 12)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Errorf("reader %d: scores increase at rank %d", r, i)
						return
					}
				}
			}
		}(r)
	}

	live := make(map[uint64][]float64, n)
	seedPts := workload.Points(workload.Gaussian, n, d, 31)
	for i, p := range seedPts {
		live[uint64(i+1)] = p
	}
	extra := workload.Points(workload.Uniform, 240, d, 63)
	for i, p := range extra {
		id := uint64(10000 + i)
		if err := s.Insert(ctx, []core.Record{{ID: id, Vector: p}}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		live[id] = p
		if i%3 == 0 {
			victim := uint64(i + 1)
			if err := s.Delete(ctx, []uint64{victim}); err != nil {
				t.Fatalf("delete seed %d: %v", victim, err)
			}
			delete(live, victim)
		}
		if i%4 == 3 {
			victim := uint64(10000 + i - 2)
			if err := s.Delete(ctx, []uint64{victim}); err != nil {
				t.Fatalf("delete extra %d: %v", victim, err)
			}
			delete(live, victim)
		}
	}
	close(stop)
	wg.Wait()
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Close(cctx); err != nil {
		t.Fatal(err)
	}

	if got := s.metrics.compactions.Value(); got < 1 {
		t.Fatalf("no background compaction landed (threshold 16, 240 mutations)")
	}
	if got := s.metrics.compactionErrors.Value(); got != 0 {
		t.Fatalf("%d compaction errors", got)
	}

	snap := s.Snapshot()
	if snap.ClusterCompactor() == nil {
		t.Fatal("final snapshot lost the hierarchical compactor")
	}
	recs := make([]core.Record, 0, len(live))
	for id, v := range live {
		recs = append(recs, core.Record{ID: id, Vector: v})
	}
	oracle, err := core.Build(recs, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != len(live) {
		t.Fatalf("served %d live records, want %d", snap.Len(), len(live))
	}
	if got, want := snap.ContentFingerprint(), oracle.ContentFingerprint(); got != want {
		t.Fatalf("served content %s, rebuild oracle %s", got, want)
	}
	for _, w := range [][]float64{{1, 1, 1}, {0.7, 0.2, 0.1}, {-0.3, 0.9, 0.4}} {
		got, _, err := snap.TopN(w, 30)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.TopN(w, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRanking(got, want) {
			t.Fatalf("post-fold ranking diverges from rebuild for weights %v", w)
		}
	}
	// The published union layering must itself be a genuine Onion.
	if err := snap.VerifyOrdering([][]float64{{1, 0, 0}, {0.5, -0.5, 1}, {0.3, 0.3, 0.4}}, 1e-9); err != nil {
		t.Fatalf("union layering violates the onion property: %v", err)
	}
}
