package server

import (
	"expvar"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Runtime telemetry. Counters and histograms live in a per-server
// expvar.Map rather than the process-global expvar registry so that
// multiple servers (tests, embedded use) never collide; cmd/onionserve
// additionally publishes the map globally for /debug/vars scrapers.
// Latency histograms are telemetry.Histogram — the same type the WAL
// manager uses for fsync timings, so /v1/metrics reports query and
// durability latencies in one shape.

// metrics is the server's telemetry. Every field is safe for
// concurrent use.
type metrics struct {
	queriesServed    expvar.Int // completed query requests (topn + search)
	queriesRejected  expvar.Int // admission-limited (429)
	queriesTimeout   expvar.Int // stopped by deadline
	searchStreams    expvar.Int // /v1/search streams opened
	searchCancelled  expvar.Int // streams abandoned by the client
	recordsEvaluated expvar.Int // cumulative Stats.RecordsEvaluated
	layersAccessed   expvar.Int // cumulative Stats.LayersAccessed
	layersPruned     expvar.Int // cumulative Stats.LayersPruned (bound-based skips)
	shellsSkipped    expvar.Int // cumulative Stats.RecordsSkippedByShells
	shellsLayers     expvar.Int // cumulative Stats.ShellLayers (layers served via shell tables)
	batchRequests    expvar.Int // /v1/topn/batch requests served
	batchQueries     expvar.Int // individual queries inside those batches
	mutationOps      expvar.Int // operations through the mutator
	mutationErrors   expvar.Int // operations that failed validation
	snapshotSwaps    expvar.Int // atomic pointer swaps published
	rebuildNanos     expvar.Int // total time building new snapshots
	inflight         expvar.Int // currently admitted queries (gauge)
	walCommits       expvar.Int // batches durably logged before publish
	walCommitErrors  expvar.Int // batches failed (and unpublished) by the WAL
	compactions      expvar.Int // background delta folds published
	compactionErrors expvar.Int // folds abandoned (cascade or replay failure)

	// predictedPageReads accumulates the paper's Eq. 2 analytic I/O cost
	// over served queries: DefaultRandomWeight per layer accessed plus
	// the evaluated records' pages. Reported next to records_evaluated /
	// shells_records_skipped so the model can be compared against the
	// mmap store's measured extent touches (predicted ≥ actual whenever
	// an extent holds more than one predicted page, since pruning skips
	// I/O at extent granularity).
	predictedPageReads expvar.Float
	servingMode        expvar.String // "heap" or "mmap"
	residentBudget     expvar.Int    // -resident-budget, 0 = unlimited

	// dim is the served index's dimension, fixed for the server's life;
	// Eq. 2 needs it to turn evaluated records into pages.
	dim int

	topnLatency      *telemetry.Histogram
	batchLatency     *telemetry.Histogram // whole-batch latency of /v1/topn/batch
	searchLatency    *telemetry.Histogram
	mutateLatency    *telemetry.Histogram
	walCommitLatency *telemetry.Histogram // group-commit (append+fsync) time
	compactLatency   *telemetry.Histogram // journal replay + swap of a finished fold

	vars *expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{
		topnLatency:      &telemetry.Histogram{},
		batchLatency:     &telemetry.Histogram{},
		searchLatency:    &telemetry.Histogram{},
		mutateLatency:    &telemetry.Histogram{},
		walCommitLatency: &telemetry.Histogram{},
		compactLatency:   &telemetry.Histogram{},
	}
	v := new(expvar.Map).Init()
	v.Set("queries_served", &m.queriesServed)
	v.Set("queries_rejected", &m.queriesRejected)
	v.Set("queries_timeout", &m.queriesTimeout)
	v.Set("search_streams", &m.searchStreams)
	v.Set("search_cancelled", &m.searchCancelled)
	v.Set("records_evaluated", &m.recordsEvaluated)
	v.Set("layers_accessed", &m.layersAccessed)
	v.Set("layers_pruned", &m.layersPruned)
	v.Set("shells_records_skipped", &m.shellsSkipped)
	v.Set("shells_layers", &m.shellsLayers)
	v.Set("batch_requests", &m.batchRequests)
	v.Set("batch_queries", &m.batchQueries)
	v.Set("mutation_ops", &m.mutationOps)
	v.Set("mutation_errors", &m.mutationErrors)
	v.Set("snapshot_swaps", &m.snapshotSwaps)
	v.Set("rebuild_ns", &m.rebuildNanos)
	v.Set("inflight", &m.inflight)
	v.Set("wal_commits", &m.walCommits)
	v.Set("wal_commit_errors", &m.walCommitErrors)
	v.Set("compactions", &m.compactions)
	v.Set("compaction_errors", &m.compactionErrors)
	m.servingMode.Set("heap")
	v.Set("predicted_page_reads", &m.predictedPageReads)
	v.Set("serving_mode", &m.servingMode)
	v.Set("resident_budget_bytes", &m.residentBudget)
	v.Set("topn_latency_ms", expvar.Func(func() any { return m.topnLatency.Summary() }))
	v.Set("batch_latency_ms", expvar.Func(func() any { return m.batchLatency.Summary() }))
	v.Set("search_latency_ms", expvar.Func(func() any { return m.searchLatency.Summary() }))
	v.Set("rebuild_latency_ms", expvar.Func(func() any { return m.mutateLatency.Summary() }))
	v.Set("wal_commit_latency_ms", expvar.Func(func() any { return m.walCommitLatency.Summary() }))
	v.Set("compact_latency_ms", expvar.Func(func() any { return m.compactLatency.Summary() }))
	m.vars = v
	return m
}

// attachSnapshot exposes the live snapshot's delta-buffer depth as a
// gauge, so operators can see how far the write path is ahead of the
// background compactor.
func (m *metrics) attachSnapshot(load func() *core.Index) {
	m.vars.Set("delta_pending", expvar.Func(func() any { return load().DeltaLen() }))
}

// attachCache publishes the result cache's counters on the metric map.
// Always attached — a disabled (nil) cache reports zeros, so scrapers
// see a stable key set whether or not -cache-bytes is configured.
func (m *metrics) attachCache(c *cache.Cache) {
	counter := func(read func(cache.Counters) int64) expvar.Var {
		return expvar.Func(func() any { return read(c.Counters()) })
	}
	m.vars.Set("cache_hits", counter(func(ct cache.Counters) int64 { return ct.Hits }))
	m.vars.Set("cache_misses", counter(func(ct cache.Counters) int64 { return ct.Misses }))
	m.vars.Set("cache_coalesced", counter(func(ct cache.Counters) int64 { return ct.Coalesced }))
	m.vars.Set("cache_evictions", counter(func(ct cache.Counters) int64 { return ct.Evictions }))
	m.vars.Set("cache_invalidations", counter(func(ct cache.Counters) int64 { return ct.Invalidations }))
	m.vars.Set("cache_bytes", counter(func(ct cache.Counters) int64 { return ct.Bytes }))
}

// observeQuery folds one completed query's work into the counters.
func (m *metrics) observeQuery(st core.Stats, d time.Duration, h *telemetry.Histogram) {
	m.queriesServed.Add(1)
	m.recordsEvaluated.Add(int64(st.RecordsEvaluated))
	m.layersAccessed.Add(int64(st.LayersAccessed))
	m.layersPruned.Add(int64(st.LayersPruned))
	m.shellsSkipped.Add(int64(st.RecordsSkippedByShells))
	m.shellsLayers.Add(int64(st.ShellLayers))
	m.predictedPageReads.Add(storage.EstimateCost(st.LayersAccessed, st.RecordsEvaluated, m.dim))
	if h != nil { // batch queries time the whole batch, not each member
		h.Observe(d)
	}
}

// Vars exposes the metric map (for embedding servers and for tests).
func (s *Server) Vars() *expvar.Map { return s.metrics.vars }

// SetServingMode records how the snapshot's slabs are backed — "heap"
// (the default) or "mmap" — and the configured resident budget, so
// /v1/metrics and benchmark reports can attribute their numbers to the
// right storage mode. Purely informational; call before serving.
func (s *Server) SetServingMode(mode string, residentBudget int64) {
	s.metrics.servingMode.Set(mode)
	s.metrics.residentBudget.Set(residentBudget)
}

// ServingMode returns the mode recorded by SetServingMode.
func (s *Server) ServingMode() string { return s.metrics.servingMode.Value() }

// AttachVars nests an extra metric group (e.g. the WAL manager's
// counters) under the given name, so it appears on /v1/metrics next to
// the serving counters.
func (s *Server) AttachVars(name string, v expvar.Var) { s.metrics.vars.Set(name, v) }

// PublishVars registers the metric map in the process-global expvar
// registry under the given name. Call at most once per process.
func (s *Server) PublishVars(name string) { expvar.Publish(name, s.metrics.vars) }
