package server

import (
	"expvar"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Runtime telemetry. Counters and histograms live in a per-server
// expvar.Map rather than the process-global expvar registry so that
// multiple servers (tests, embedded use) never collide; cmd/onionserve
// additionally publishes the map globally for /debug/vars scrapers.

// histBuckets are upper bounds in nanoseconds, exponential from 100µs.
// 22 doublings reach ~7 minutes; the last bucket is unbounded.
const histBase = 100 * 1000 // 100µs in ns
const histCount = 24

// histogram is a lock-free exponential latency histogram.
type histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histCount]atomic.Int64
}

func bucketBound(i int) int64 { return histBase << uint(i) }

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.count.Add(1)
	h.sumNs.Add(ns)
	for i := 0; i < histCount-1; i++ {
		if ns <= bucketBound(i) {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[histCount-1].Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) in milliseconds by
// linear interpolation inside the containing bucket. With no samples it
// returns 0.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var acc int64
	lo := int64(0)
	for i := 0; i < histCount; i++ {
		c := h.buckets[i].Load()
		hi := bucketBound(i)
		if i == histCount-1 {
			hi = 2 * bucketBound(histCount-2) // nominal cap for the overflow bucket
		}
		if float64(acc+c) >= rank && c > 0 {
			frac := (rank - float64(acc)) / float64(c)
			return (float64(lo) + frac*float64(hi-lo)) / 1e6
		}
		acc += c
		lo = hi
	}
	return float64(lo) / 1e6
}

// summary renders the histogram for expvar: count, mean and the
// quantiles a load test regresses against.
func (h *histogram) summary() map[string]any {
	n := h.count.Load()
	out := map[string]any{
		"count": n,
		"p50":   h.quantile(0.50),
		"p90":   h.quantile(0.90),
		"p99":   h.quantile(0.99),
	}
	if n > 0 {
		out["mean"] = float64(h.sumNs.Load()) / float64(n) / 1e6
	} else {
		out["mean"] = 0.0
	}
	return out
}

// metrics is the server's telemetry. Every field is safe for
// concurrent use.
type metrics struct {
	queriesServed    expvar.Int // completed query requests (topn + search)
	queriesRejected  expvar.Int // admission-limited (429)
	queriesTimeout   expvar.Int // stopped by deadline
	searchStreams    expvar.Int // /v1/search streams opened
	searchCancelled  expvar.Int // streams abandoned by the client
	recordsEvaluated expvar.Int // cumulative Stats.RecordsEvaluated
	layersAccessed   expvar.Int // cumulative Stats.LayersAccessed
	mutationOps      expvar.Int // operations through the mutator
	mutationErrors   expvar.Int // operations that failed validation
	snapshotSwaps    expvar.Int // atomic pointer swaps published
	rebuildNanos     expvar.Int // total time building new snapshots
	inflight         expvar.Int // currently admitted queries (gauge)

	topnLatency   *histogram
	searchLatency *histogram
	mutateLatency *histogram

	vars *expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{
		topnLatency:   &histogram{},
		searchLatency: &histogram{},
		mutateLatency: &histogram{},
	}
	v := new(expvar.Map).Init()
	v.Set("queries_served", &m.queriesServed)
	v.Set("queries_rejected", &m.queriesRejected)
	v.Set("queries_timeout", &m.queriesTimeout)
	v.Set("search_streams", &m.searchStreams)
	v.Set("search_cancelled", &m.searchCancelled)
	v.Set("records_evaluated", &m.recordsEvaluated)
	v.Set("layers_accessed", &m.layersAccessed)
	v.Set("mutation_ops", &m.mutationOps)
	v.Set("mutation_errors", &m.mutationErrors)
	v.Set("snapshot_swaps", &m.snapshotSwaps)
	v.Set("rebuild_ns", &m.rebuildNanos)
	v.Set("inflight", &m.inflight)
	v.Set("topn_latency_ms", expvar.Func(func() any { return m.topnLatency.summary() }))
	v.Set("search_latency_ms", expvar.Func(func() any { return m.searchLatency.summary() }))
	v.Set("rebuild_latency_ms", expvar.Func(func() any { return m.mutateLatency.summary() }))
	m.vars = v
	return m
}

// observeQuery folds one completed query's work into the counters.
func (m *metrics) observeQuery(st core.Stats, d time.Duration, h *histogram) {
	m.queriesServed.Add(1)
	m.recordsEvaluated.Add(int64(st.RecordsEvaluated))
	m.layersAccessed.Add(int64(st.LayersAccessed))
	h.observe(d)
}

// Vars exposes the metric map (for embedding servers and for tests).
func (s *Server) Vars() *expvar.Map { return s.metrics.vars }

// PublishVars registers the metric map in the process-global expvar
// registry under the given name. Call at most once per process.
func (s *Server) PublishVars(name string) { expvar.Publish(name, s.metrics.vars) }
