package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestSearchClientCancelNoGoroutineLeak drives the real network path of
// a mid-NDJSON hang-up: an HTTP client consumes a prefix of a
// progressive stream and cancels. The handler must notice (the
// searcher stops, search_cancelled increments) and every goroutine the
// request spawned must drain — the leak check this test exists for
// runs meaningfully under -race.
func TestSearchClientCancelNoGoroutineLeak(t *testing.T) {
	s, ts := newTestServer(t, 20000, 2, Config{})

	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// Warm up one full request/response cycle so the transport's steady
	// state goroutines exist before the baseline is taken.
	warm, err := client.Post(ts.URL+"/v1/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	const streams = 4
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		body, _ := json.Marshal(SearchRequest{Weights: []float64{0.6, 0.4}, Limit: 0})
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/search", bytes.NewReader(body))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Consume two ranks mid-stream, then hang up without draining.
		br := bufio.NewReader(resp.Body)
		for l := 0; l < 2; l++ {
			if _, err := br.ReadString('\n'); err != nil {
				t.Fatalf("stream %d line %d: %v", i, l, err)
			}
		}
		cancel()
		resp.Body.Close()
	}

	// The handler observes the cancel asynchronously; give it a bounded
	// window rather than a sleep.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.searchCancelled.Value() < streams {
		if time.Now().After(deadline) {
			t.Fatalf("search_cancelled = %d after %d abandoned streams",
				s.metrics.searchCancelled.Value(), streams)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// search_cancelled == streams proves every searcher terminated via
	// the cancel path, not by walking to natural completion. How *early*
	// it stops is not asserted here: the kernel socket buffers absorb an
	// unpredictable prefix of the stream before the handler blocks, so a
	// record-count bound would be a bet on buffer sizes. The synthetic
	// TestSearchCancelStopsConsumingLayers pins the early-stop property
	// deterministically with an in-process writer.

	// Every request goroutine (handler, searcher, transport writer) must
	// be gone. Allow slack for runtime background goroutines.
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d, baseline %d — leak after client cancels:\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSearchTruncatedTrailerExactBoundary pins the off-by-one edge of
// the truncated flag: a cap exactly equal to the index size delivers
// the complete ranking (not truncated); a cap one short cuts it
// (truncated). The flag must flip exactly between these neighbors.
func TestSearchTruncatedTrailerExactBoundary(t *testing.T) {
	const n = 60
	for _, tc := range []struct {
		name      string
		cap       int
		wantLen   int
		truncated bool
	}{
		{"cap equals index size", n, n, false},
		{"cap one short", n - 1, n - 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, n, 2, Config{MaxResults: tc.cap})
			resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Weights: []float64{1, 1}, Limit: 0})
			results, trailer := readSearchStream(t, resp)
			resp.Body.Close()
			if len(results) != tc.wantLen {
				t.Fatalf("got %d results, want %d", len(results), tc.wantLen)
			}
			if trailer == nil || !trailer.Done || trailer.Truncated != tc.truncated {
				t.Fatalf("trailer = %+v, want done with truncated=%v", trailer, tc.truncated)
			}
		})
	}
}
