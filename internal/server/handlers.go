package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// Wire types. The JSON surface is deliberately small and stable:
// clients send weights, get back (id, score, layer) triples plus the
// paper's two work counters.

// TopNRequest is the body of POST /v1/topn.
type TopNRequest struct {
	Weights []float64 `json:"weights"`
	N       int       `json:"n"`
	// Ranges, when present, constrain results to records whose
	// attributes fall inside every given closed interval — the paper's
	// Section 4 constrained ("local") queries, answered by expanding
	// the global ranking until n records qualify. Filtered queries
	// bypass the result cache: cached entries are keyed by weights
	// alone and their prefixes answer unfiltered queries only.
	Ranges []RangeJSON `json:"ranges,omitempty"`
}

// RangeJSON is one interval constraint on one attribute. A nil bound
// is unbounded on that side — `{"attr":1,"lo":5}` means [5, +inf), not
// [5, 0] (which the old non-pointer decoding produced, turning every
// half-bounded request into a 400 "empty range"). A constraint with
// neither bound constrains nothing and is dropped at parse time.
type RangeJSON struct {
	Attr int      `json:"attr"`
	Lo   *float64 `json:"lo,omitempty"`
	Hi   *float64 `json:"hi,omitempty"`
}

// Bound returns a pointer to v — a convenience for building RangeJSON
// values in clients and tests.
func Bound(v float64) *float64 { return &v }

// SearchRequest is the body of POST /v1/search. Limit <= 0 asks for the
// complete ranking; if the server is configured with a MaxResults cap,
// the stream stops there instead and the trailer reports truncated.
type SearchRequest struct {
	Weights []float64 `json:"weights"`
	Limit   int       `json:"limit"`
}

// RecordJSON is one record in an insert request.
type RecordJSON struct {
	ID     uint64    `json:"id"`
	Vector []float64 `json:"vector"`
}

// InsertRequest is the body of POST /v1/insert.
type InsertRequest struct {
	Records []RecordJSON `json:"records"`
}

// DeleteRequest is the body of POST /v1/delete. MissingOK asks the
// server to skip IDs it does not hold (deduplicated) instead of
// rejecting the whole batch — the mode a shard coordinator's broadcast
// deletes use, where each shard owns only part of the ID set. The
// response's Applied then reports how many records were actually
// removed.
type DeleteRequest struct {
	IDs       []uint64 `json:"ids"`
	MissingOK bool     `json:"missing_ok,omitempty"`
}

// ResultJSON is one ranked answer on the wire.
type ResultJSON struct {
	ID    uint64  `json:"id"`
	Score float64 `json:"score"`
	Layer int     `json:"layer"`
}

// StatsJSON mirrors core.Stats. The shell counters are zero unless the
// server runs with spherical-shell pruning (Config.Shells); evaluated
// plus skipped always totals the accessed layers' record count.
type StatsJSON struct {
	RecordsEvaluated       int `json:"records_evaluated"`
	LayersAccessed         int `json:"layers_accessed"`
	LayersPruned           int `json:"layers_pruned"`
	RecordsSkippedByShells int `json:"records_skipped_by_shells"`
	ShellLayers            int `json:"shell_layers"`
}

func statsJSON(st core.Stats) StatsJSON {
	return StatsJSON{
		RecordsEvaluated:       st.RecordsEvaluated,
		LayersAccessed:         st.LayersAccessed,
		LayersPruned:           st.LayersPruned,
		RecordsSkippedByShells: st.RecordsSkippedByShells,
		ShellLayers:            st.ShellLayers,
	}
}

// TopNResponse is the body of a successful POST /v1/topn.
type TopNResponse struct {
	Results []ResultJSON `json:"results"`
	Stats   StatsJSON    `json:"stats"`
}

// TopNBatchRequest is the body of POST /v1/topn/batch: one n shared by
// every query, matching the fused evaluation underneath.
type TopNBatchRequest struct {
	Weights [][]float64 `json:"weights"`
	N       int         `json:"n"`
}

// TopNBatchResponse answers a batch positionally: Queries[i] holds the
// results and stats of Weights[i], exactly as a solo /v1/topn would
// have reported them.
type TopNBatchResponse struct {
	Queries []TopNResponse `json:"queries"`
}

// SearchTrailer is the final NDJSON line of a completed /v1/search
// stream (result lines carry no "done" field). Truncated is true when
// the server's MaxResults cap cut the stream short of what the request
// asked for, so a capped ranking is distinguishable from a complete one.
type SearchTrailer struct {
	Done      bool      `json:"done"`
	Truncated bool      `json:"truncated,omitempty"`
	Stats     StatsJSON `json:"stats"`
}

// MutateResponse is the body of a successful insert/delete.
type MutateResponse struct {
	Applied int `json:"applied"` // records inserted or deleted
	Len     int `json:"len"`     // live records after the swap
	Layers  int `json:"layers"`  // layers after the swap
}

// HealthResponse is the body of GET /v1/healthz and its liveness /
// readiness split. /v1/healthz/live answers 200 whenever the process
// serves HTTP at all; /v1/healthz/ready answers 200 only once the
// index is recovered and queryable (503 otherwise), which is what a
// shard coordinator polls to exclude a recovering replica from
// fan-out. Plain /v1/healthz keeps its historical always-200 shape
// with the ready bit included.
type HealthResponse struct {
	OK      bool `json:"ok"`
	Ready   bool `json:"ready"`
	Records int  `json:"records"`
	Layers  int  `json:"layers"`
	Dim     int  `json:"dim"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topn", s.handleTopN)
	mux.HandleFunc("POST /v1/topn/batch", s.handleTopNBatch)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz/live", s.handleLive)
	mux.HandleFunc("GET /v1/healthz/ready", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// queryContext applies the configured default deadline when the client
// request carries none.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, s.cfg.QueryTimeout)
		}
	}
	return ctx, func() {}
}

func (s *Server) clampLimit(n int) int {
	if s.cfg.MaxResults > 0 && (n <= 0 || n > s.cfg.MaxResults) {
		return s.cfg.MaxResults
	}
	return n
}

func (s *Server) handleTopN(w http.ResponseWriter, r *http.Request) {
	var req TopNRequest
	if !decode(w, r, &req) {
		return
	}
	if req.N <= 0 {
		writeErr(w, http.StatusBadRequest, "n must be positive")
		return
	}
	// Reject malformed weight vectors (wrong dimension, NaN/Inf
	// components) before spending an admission slot. Standard JSON
	// cannot carry NaN/Inf literals, but ValidateWeights is the
	// authoritative gate for any ingress that can (and returns a clearer
	// error than the nil-Searcher fallback below).
	if err := core.ValidateWeights(req.Weights, s.Snapshot().Dim()); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ranges, rngErr := NormalizeRanges(req.Ranges, s.Snapshot().Dim())
	if rngErr != nil {
		writeErr(w, http.StatusBadRequest, "%v", rngErr)
		return
	}
	req.Ranges = ranges
	if !s.admit() {
		writeErr(w, http.StatusTooManyRequests, "server at max in-flight queries")
		return
	}
	defer s.release()
	ctx, cancel := s.queryContext(r)
	defer cancel()

	if len(req.Ranges) > 0 {
		s.serveTopNFiltered(ctx, w, req)
		return
	}

	start := time.Now()
	// Epoch before snapshot: paired with apply's store-then-bump, this
	// order makes it impossible for a result computed against a pre-swap
	// snapshot to be cached under the post-swap epoch (cache package
	// comment has the full argument). Harmless when the cache is off
	// (epoch stays 0).
	epoch := s.cache.Epoch()
	snap := s.Snapshot()
	n := s.clampLimit(req.N)
	var (
		results []core.Result
		st      core.Stats
		outcome = cache.Miss
		err     error
	)
	if s.cache != nil {
		results, st, outcome, err = s.cache.GetOrCompute(core.WeightKey(req.Weights), n, epoch,
			func() ([]core.Result, core.Stats, error) {
				return computeTopN(ctx, snap, req.Weights, n)
			})
	} else {
		results, st, err = computeTopN(ctx, snap, req.Weights, n)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.metrics.observeQuery(st, time.Since(start), s.metrics.topnLatency)
			s.metrics.queriesTimeout.Add(1)
			writeErr(w, http.StatusServiceUnavailable, "query stopped: %v", err)
		} else {
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	// Work counters report evaluation this request actually performed: a
	// hit (or a ride on another request's computation) evaluated nothing.
	// The response stats, by contrast, describe the computation that
	// produced the results — for a prefix-served hit, the original
	// (possibly deeper) walk.
	obsSt := st
	if outcome != cache.Miss {
		obsSt = core.Stats{}
	}
	s.metrics.observeQuery(obsSt, time.Since(start), s.metrics.topnLatency)
	rs := make([]ResultJSON, len(results))
	for i, res := range results {
		rs[i] = ResultJSON{ID: res.ID, Score: res.Score, Layer: res.Layer}
	}
	writeJSON(w, http.StatusOK, TopNResponse{
		Results: rs,
		Stats:   statsJSON(st),
	})
}

// computeTopN is the uncached /v1/topn evaluation, shared verbatim by
// the cache-miss leg and the cache-disabled leg so the two can never
// drift: the context-aware Searcher rather than Index.TopN, so a
// deadline or a dropped connection stops the layer walk mid-query. The
// checked constructor re-validates against the snapshot actually
// queried: the handler's pre-admission gate used an earlier Snapshot()
// load, and a concurrent swap could have changed the dimension in
// between. A context error is reported with the stats accumulated so
// far (the handler still records the wasted work).
func computeTopN(ctx context.Context, snap *core.Index, weights []float64, n int) ([]core.Result, core.Stats, error) {
	sr, err := snap.NewSearcherChecked(weights, n)
	if err != nil {
		return nil, core.Stats{}, err
	}
	sr.WithContext(ctx)
	// Cap the preallocation by the snapshot size: n is client-controlled
	// and, with no MaxResults clamp configured, a huge n must not force a
	// huge (or panicking) allocation up front.
	results := make([]core.Result, 0, min(n, snap.Len()))
	for {
		res, ok := sr.Next()
		if !ok {
			break
		}
		results = append(results, res)
	}
	if err := sr.Err(); err != nil {
		return nil, sr.Stats(), err
	}
	return results, sr.Stats(), nil
}

// NormalizeRanges validates and canonicalizes predicate constraints at
// parse time: attributes must exist (dim < 0 skips the upper-bound
// check — the coordinator normalizes without knowing the corpus
// dimension and lets shards reject bad attributes), a fully bounded
// interval must be non-empty (Lo > Hi can only ever force a
// full-corpus expansion that returns nothing), and constraints with no
// bounds at all are dropped. A request whose every range is unbounded
// — including the degenerate `"ranges": []` — normalizes to nil and is
// served as the unfiltered query it is: through the result cache here,
// through the ordinary scatter on the coordinator.
func NormalizeRanges(ranges []RangeJSON, dim int) ([]RangeJSON, error) {
	var out []RangeJSON
	for _, rg := range ranges {
		if rg.Attr < 0 || (dim >= 0 && rg.Attr >= dim) {
			return nil, fmt.Errorf("range on attribute %d of %d", rg.Attr, dim)
		}
		if rg.Lo == nil && rg.Hi == nil {
			continue // unbounded both sides: constrains nothing
		}
		if rg.Lo != nil && rg.Hi != nil && *rg.Lo > *rg.Hi {
			return nil, fmt.Errorf("empty range [%g, %g] on attribute %d", *rg.Lo, *rg.Hi, rg.Attr)
		}
		out = append(out, rg)
	}
	return out, nil
}

// serveTopNFiltered answers a /v1/topn request carrying range
// predicates: the paper's Section 4 expansion — stream the global
// ranking (context-aware, so a deadline stops a predicate that is
// anti-correlated with the weights mid-scan) and keep the first n
// qualifying records. Runs uncached: cache entries are keyed by weights
// alone and prefix-serve unfiltered rankings only. The shard
// coordinator pushes the same ranges down to every shard and merges the
// per-shard filtered rankings on the total order (see internal/shard).
func (s *Server) serveTopNFiltered(ctx context.Context, w http.ResponseWriter, req TopNRequest) {
	start := time.Now()
	snap := s.Snapshot()
	n := s.clampLimit(req.N)
	sr, err := snap.NewSearcherChecked(req.Weights, 0) // unbounded: expand until n qualify
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sr.WithContext(ctx)
	results := make([]core.Result, 0, min(n, snap.Len()))
	for len(results) < n {
		res, ok := sr.Next()
		if !ok {
			break
		}
		v, ok := snap.Vector(res.ID)
		if !ok {
			continue // unreachable: the searcher only emits live records
		}
		if inRanges(v, req.Ranges) {
			results = append(results, res)
		}
	}
	st := sr.Stats()
	s.metrics.observeQuery(st, time.Since(start), s.metrics.topnLatency)
	if err := sr.Err(); err != nil {
		s.metrics.queriesTimeout.Add(1)
		writeErr(w, http.StatusServiceUnavailable, "query stopped: %v", err)
		return
	}
	rs := make([]ResultJSON, len(results))
	for i, res := range results {
		rs[i] = ResultJSON{ID: res.ID, Score: res.Score, Layer: res.Layer}
	}
	writeJSON(w, http.StatusOK, TopNResponse{Results: rs, Stats: statsJSON(st)})
}

func inRanges(v []float64, ranges []RangeJSON) bool {
	for _, rg := range ranges {
		if rg.Lo != nil && v[rg.Attr] < *rg.Lo {
			return false
		}
		if rg.Hi != nil && v[rg.Attr] > *rg.Hi {
			return false
		}
	}
	return true
}

// handleTopNBatch answers B queries in one request through the fused
// batch evaluator: every accessed layer's columnar slab is streamed
// once for the whole batch. Per-query output is bit-identical to solo
// /v1/topn calls. One invalid weight vector fails the entire request
// (all-or-nothing, like a single query); the batch occupies a single
// admission slot — it is one request's worth of work from the
// scheduler's point of view, amortized though it is.
func (s *Server) handleTopNBatch(w http.ResponseWriter, r *http.Request) {
	var req TopNBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.N <= 0 {
		writeErr(w, http.StatusBadRequest, "n must be positive")
		return
	}
	if len(req.Weights) == 0 {
		writeErr(w, http.StatusBadRequest, "no queries")
		return
	}
	// Bound the batch fan-out like the admission cap bounds solo queries:
	// a single request must not smuggle in unbounded work.
	if maxQ := s.cfg.MaxInFlight; len(req.Weights) > maxQ {
		writeErr(w, http.StatusBadRequest, "batch of %d queries exceeds limit %d", len(req.Weights), maxQ)
		return
	}
	// Reject malformed weight vectors (wrong dimension, NaN/Inf
	// components) before spending an admission slot, mirroring /v1/topn.
	// TopNBatch re-validates every vector against the snapshot actually
	// queried before any scoring (all-or-nothing), so this is a cheap
	// early 400 with a per-query position, not the authoritative gate.
	dim := s.Snapshot().Dim()
	for q, wts := range req.Weights {
		if err := core.ValidateWeights(wts, dim); err != nil {
			writeErr(w, http.StatusBadRequest, "batch query %d: %v", q, err)
			return
		}
	}
	if !s.admit() {
		writeErr(w, http.StatusTooManyRequests, "server at max in-flight queries")
		return
	}
	defer s.release()

	start := time.Now()
	// Same epoch-before-snapshot order as the solo handler.
	epoch := s.cache.Epoch()
	snap := s.Snapshot()
	n := s.clampLimit(req.N)

	var (
		results [][]core.Result
		stats   []core.Stats
		// computedWork[q] is true when this request actually evaluated
		// query q (the first occurrence of a missed key): only those
		// queries fold real numbers into the cumulative work counters.
		computedWork []bool
	)
	if s.cache != nil {
		var err error
		results, stats, computedWork, err = s.batchThroughCache(snap, req.Weights, n, epoch)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		var err error
		results, stats, err = snap.TopNBatch(req.Weights, n)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	s.metrics.batchRequests.Add(1)
	s.metrics.batchQueries.Add(int64(len(req.Weights)))
	resp := TopNBatchResponse{Queries: make([]TopNResponse, len(results))}
	for q, res := range results {
		rs := make([]ResultJSON, len(res))
		for i, rr := range res {
			rs[i] = ResultJSON{ID: rr.ID, Score: rr.Score, Layer: rr.Layer}
		}
		resp.Queries[q] = TopNResponse{Results: rs, Stats: statsJSON(stats[q])}
		obsSt := stats[q]
		if computedWork != nil && !computedWork[q] {
			obsSt = core.Stats{} // served from cache (or a duplicate): no new work
		}
		s.metrics.observeQuery(obsSt, 0, nil)
	}
	s.metrics.batchLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// batchThroughCache answers a batch with cache consultation: hits are
// served from their entries, distinct missed keys are evaluated in ONE
// fused TopNBatch pass (keeping the batch path's whole-batch slab
// amortization for the part that needs computing), and each computed
// ranking is installed for the next request. Duplicate weight vectors
// within the batch are evaluated once and share the result — the walk
// is deterministic, so the copies are bit-identical by construction.
// Batch members do not join cross-request singleflight flights (that
// would serialize the fused pass behind solo queries); coalescing
// within the request is the dedup itself.
func (s *Server) batchThroughCache(snap *core.Index, weights [][]float64, n int, epoch uint64) ([][]core.Result, []core.Stats, []bool, error) {
	nq := len(weights)
	results := make([][]core.Result, nq)
	stats := make([]core.Stats, nq)
	computedWork := make([]bool, nq)
	served := make([]bool, nq)
	keys := make([]string, nq)
	missPos := make(map[string]int) // key -> index into missW
	var missW [][]float64
	for q, wts := range weights {
		keys[q] = core.WeightKey(wts)
		if res, st, ok := s.cache.Get(keys[q], n, epoch); ok {
			results[q], stats[q], served[q] = res, st, true
			continue
		}
		if _, dup := missPos[keys[q]]; !dup {
			missPos[keys[q]] = len(missW)
			missW = append(missW, wts)
		}
	}
	if len(missW) > 0 {
		computed, computedStats, err := snap.TopNBatch(missW, n)
		if err != nil {
			return nil, nil, nil, err
		}
		counted := make([]bool, len(missW))
		for q := range weights {
			if served[q] {
				continue
			}
			mi := missPos[keys[q]]
			results[q], stats[q] = computed[mi], computedStats[mi]
			if !counted[mi] {
				counted[mi] = true
				computedWork[q] = true
			}
		}
		for key, mi := range missPos {
			s.cache.Put(key, epoch, n, computed[mi], computedStats[mi])
		}
	}
	return results, stats, computedWork, nil
}

// handleSearch streams progressive retrieval as NDJSON: one ResultJSON
// per line in exact rank order, then a SearchTrailer line on normal
// completion. Clients pay only for the ranks they read; closing the
// connection cancels the request context, which stops the Searcher
// before its next layer.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	if err := core.ValidateWeights(req.Weights, s.Snapshot().Dim()); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.admit() {
		writeErr(w, http.StatusTooManyRequests, "server at max in-flight queries")
		return
	}
	defer s.release()
	ctx, cancel := s.queryContext(r)
	defer cancel()

	start := time.Now()
	snap := s.Snapshot()
	limit := s.clampLimit(req.Limit)
	sr, err := snap.NewSearcherChecked(req.Weights, limit)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	sr.WithContext(ctx)
	s.metrics.searchStreams.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emitted := 0
	for {
		res, ok := sr.Next()
		if !ok {
			break
		}
		if enc.Encode(ResultJSON{ID: res.ID, Score: res.Score, Layer: res.Layer}) != nil {
			break // client went away; ctx cancel stops the searcher too
		}
		emitted++
		// Flush per result: progressive retrieval's whole point is that
		// rank M arrives without waiting for rank M+1 to be computed.
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
	st := sr.Stats()
	s.metrics.observeQuery(st, time.Since(start), s.metrics.searchLatency)
	if err := sr.Err(); err != nil {
		s.metrics.searchCancelled.Add(1)
		return // mid-stream; nothing useful to append
	}
	// The stream was truncated if MaxResults rewrote the requested limit
	// and the cap was actually what stopped the stream (more live records
	// remained beyond the last emitted rank).
	truncated := limit != req.Limit && emitted == limit && emitted < snap.Len()
	enc.Encode(SearchTrailer{Done: true, Truncated: truncated, Stats: statsJSON(st)})
	bw.Flush()
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Records) == 0 {
		writeErr(w, http.StatusBadRequest, "no records")
		return
	}
	recs := make([]core.Record, len(req.Records))
	for i, rec := range req.Records {
		recs[i] = core.Record{ID: rec.ID, Vector: rec.Vector}
	}
	if err := s.Insert(r.Context(), recs); err != nil {
		writeMutationErr(w, err)
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, MutateResponse{Applied: len(recs), Len: snap.Len(), Layers: snap.NumLayers()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, "no ids")
		return
	}
	applied := len(req.IDs)
	if req.MissingOK {
		var err error
		if applied, err = s.DeleteIfPresent(r.Context(), req.IDs); err != nil {
			writeMutationErr(w, err)
			return
		}
	} else if err := s.Delete(r.Context(), req.IDs); err != nil {
		writeMutationErr(w, err)
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, MutateResponse{Applied: applied, Len: snap.Len(), Layers: snap.NumLayers()})
}

func writeMutationErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrDuplicateID):
		writeErr(w, http.StatusConflict, "%v", err)
	case errors.Is(err, core.ErrNotFound):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusServiceUnavailable, "mutation wait aborted: %v (the batch may still apply)", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.metrics.vars.String())
}

func (s *Server) health() HealthResponse {
	snap := s.Snapshot()
	return HealthResponse{
		OK:      true,
		Ready:   s.Ready(),
		Records: snap.Len(),
		Layers:  snap.NumLayers(),
		Dim:     snap.Dim(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
