package server

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// sameRanking compares two result sequences on the total order's
// observable fields: IDs in order and bit-identical scores. Layer is
// excluded deliberately — delta-resident records report Layer -1 until
// a compaction assigns them a hull, and the write-path contract is
// bit-identical (id, score) rankings, not identical layer annotations.
func sameRanking(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// TestDeltaMatchesLegacyServing drives one mutation script through two
// servers sharing a common seed corpus — one on the incremental delta
// path, one on the legacy synchronous cascade — and requires every
// query answer to be bit-identical between them. This is the serving-
// layer form of the core equivalence property: publish mechanics must
// be invisible to results.
func TestDeltaMatchesLegacyServing(t *testing.T) {
	const n, d = 300, 3
	mk := func(threshold int) *Server {
		s := New(buildIndex(t, n, d, 77), Config{DeltaThreshold: threshold})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Close(ctx)
		})
		return s
	}
	// A huge threshold keeps every mutation in the delta buffer for the
	// whole test; -1 re-cascades synchronously.
	delta, legacy := mk(1<<20), mk(-1)

	ctx := context.Background()
	extra := workload.Points(workload.Uniform, 60, d, 99)
	step := func(i int, do func(s *Server) error) {
		t.Helper()
		for _, s := range []*Server{delta, legacy} {
			if err := do(s); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	weights := [][]float64{{0.5, 0.3, 0.2}, {1, 0, 0}, {-0.4, 1.2, 0.1}}
	check := func(i int) {
		t.Helper()
		for wi, w := range weights {
			for _, nn := range []int{1, 10, 50} {
				dr, _, err := delta.Snapshot().TopN(w, nn)
				if err != nil {
					t.Fatalf("step %d: delta topn: %v", i, err)
				}
				lr, _, err := legacy.Snapshot().TopN(w, nn)
				if err != nil {
					t.Fatalf("step %d: legacy topn: %v", i, err)
				}
				if !sameRanking(dr, lr) {
					t.Fatalf("step %d: weight %d n=%d: delta path diverges from legacy cascade", i, wi, nn)
				}
			}
		}
	}
	for i := 0; i < 20; i++ {
		switch i % 4 {
		case 0, 1: // insert a few fresh records
			recs := []core.Record{
				{ID: uint64(50000 + 2*i), Vector: extra[(2*i)%len(extra)]},
				{ID: uint64(50000 + 2*i + 1), Vector: extra[(2*i+1)%len(extra)]},
			}
			step(i, func(s *Server) error { return s.Insert(ctx, recs) })
		case 2: // delete a seed record still present on both
			step(i, func(s *Server) error { return s.Delete(ctx, []uint64{uint64(3*i + 1)}) })
		case 3: // missing-ok delete mixing present and absent IDs
			step(i, func(s *Server) error {
				_, err := s.DeleteIfPresent(ctx, []uint64{uint64(3*i + 2), 888888})
				return err
			})
		}
		check(i)
	}
	if !delta.Snapshot().HasDelta() {
		t.Fatal("delta server folded its buffer; the test exercised nothing")
	}
	if legacy.Snapshot().HasDelta() {
		t.Fatal("legacy server grew a delta buffer")
	}
}

// TestCompactionFoldsDeltaUnderLoad runs the full write-path machine:
// a low compaction threshold, a writer publishing insert/delete batches
// through the mutator, and concurrent readers on the live snapshot.
// Afterwards the served state must equal a from-scratch rebuild of the
// expected record set (content and bit-identical rankings), at least
// one background fold must have landed, and none may have failed.
func TestCompactionFoldsDeltaUnderLoad(t *testing.T) {
	const n, d = 400, 3
	s := New(buildIndex(t, n, d, 31), Config{DeltaThreshold: 16, CacheBytes: 1 << 20})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := []float64{0.2 + float64(r)*0.3, 0.5, 0.3}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := s.Snapshot().TopN(w, 12)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Errorf("reader %d: scores increase at rank %d", r, i)
						return
					}
				}
			}
		}(r)
	}

	// The expected live set: seed corpus, then the writer's script.
	live := make(map[uint64][]float64, n)
	seedPts := workload.Points(workload.Gaussian, n, d, 31)
	for i, p := range seedPts {
		live[uint64(i+1)] = p
	}
	extra := workload.Points(workload.Uniform, 240, d, 63)
	for i, p := range extra {
		id := uint64(10000 + i)
		if err := s.Insert(ctx, []core.Record{{ID: id, Vector: p}}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		live[id] = p
		if i%3 == 0 { // delete a seed record
			victim := uint64(i + 1)
			if err := s.Delete(ctx, []uint64{victim}); err != nil {
				t.Fatalf("delete seed %d: %v", victim, err)
			}
			delete(live, victim)
		}
		if i%4 == 3 { // delete a recently inserted record
			victim := uint64(10000 + i - 2)
			if err := s.Delete(ctx, []uint64{victim}); err != nil {
				t.Fatalf("delete extra %d: %v", victim, err)
			}
			delete(live, victim)
		}
	}
	close(stop)
	wg.Wait()
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Close(cctx); err != nil { // drains any in-flight fold
		t.Fatal(err)
	}

	if got := s.metrics.compactions.Value(); got < 1 {
		t.Fatalf("no background compaction landed (threshold 16, %d mutations)", 240)
	}
	if got := s.metrics.compactionErrors.Value(); got != 0 {
		t.Fatalf("%d compaction errors", got)
	}

	recs := make([]core.Record, 0, len(live))
	for id, v := range live {
		recs = append(recs, core.Record{ID: id, Vector: v})
	}
	oracle, err := core.Build(recs, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Len() != len(live) {
		t.Fatalf("served %d live records, want %d", snap.Len(), len(live))
	}
	if got, want := snap.ContentFingerprint(), oracle.ContentFingerprint(); got != want {
		t.Fatalf("served content %s, rebuild oracle %s", got, want)
	}
	for _, w := range [][]float64{{1, 1, 1}, {0.7, 0.2, 0.1}, {-0.3, 0.9, 0.4}} {
		got, _, err := snap.TopN(w, 30)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.TopN(w, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRanking(got, want) {
			t.Fatalf("post-compaction ranking diverges from rebuild for weights %v", w)
		}
	}
}
