package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestTopNFilteredEndpoint exercises the ranges field of /v1/topn: the
// answer must match the index's own constrained query (Section 4
// expansion) exactly, and every result must satisfy every predicate.
func TestTopNFilteredEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 600, 3, Config{})
	w := []float64{0.5, 0.3, 0.2}
	ranges := []RangeJSON{
		{Attr: 0, Lo: Bound(-0.5), Hi: Bound(2.0)},
		{Attr: 2, Lo: Bound(-1.0), Hi: Bound(1.0)},
	}

	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: w, N: 10, Ranges: ranges})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	want, _, err := snap.TopNInRanges(w, 10, map[int][2]float64{
		0: {-0.5, 2.0},
		2: {-1.0, 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want))
	}
	for i, r := range got.Results {
		if r.ID != want[i].ID || r.Score != want[i].Score {
			t.Fatalf("result %d: got %+v want %+v", i, r, want[i])
		}
		v, ok := snap.Vector(r.ID)
		if !ok {
			t.Fatalf("result %d: id %d not in index", i, r.ID)
		}
		if !inRanges(v, ranges) {
			t.Fatalf("result %d violates a range predicate: %v", i, v)
		}
	}
}

func TestTopNFilteredBadRanges(t *testing.T) {
	_, ts := newTestServer(t, 100, 2, Config{})
	for _, tc := range []struct {
		name   string
		ranges []RangeJSON
	}{
		{"attr out of range", []RangeJSON{{Attr: 5, Lo: Bound(0), Hi: Bound(1)}}},
		{"negative attr", []RangeJSON{{Attr: -1, Lo: Bound(0), Hi: Bound(1)}}},
		{"empty interval", []RangeJSON{{Attr: 0, Lo: Bound(2), Hi: Bound(1)}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 5, Ranges: tc.ranges})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestTopNFilteredSkipsCache pins the cache-bypass invariant: a cached
// unfiltered ranking must never be served to a filtered request (cache
// keys ignore predicates).
func TestTopNFilteredSkipsCache(t *testing.T) {
	s, ts := newTestServer(t, 400, 2, Config{CacheBytes: 1 << 20})
	w := []float64{0.7, 0.3}

	// Prime the cache with the unfiltered ranking.
	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: w, N: 5})
	resp.Body.Close()

	// A narrow predicate must produce a different (still-satisfying)
	// answer, not the cached prefix.
	resp = postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: w, N: 5, Ranges: []RangeJSON{{Attr: 0, Lo: Bound(-10), Hi: Bound(-0.5)}}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Results {
		v, ok := s.Snapshot().Vector(r.ID)
		if !ok {
			t.Fatalf("result %d: id %d not in index", i, r.ID)
		}
		if v[0] > -0.5 {
			t.Fatalf("result %d (id %d) violates the predicate: %v — cached unfiltered ranking leaked", i, r.ID, v)
		}
	}
}

// TestDegenerateFilterNormalizedToUnfiltered is the parse-time
// normalization regression: `"ranges": []` and all-unbounded ranges
// are exactly unfiltered queries and must be served as such — through
// the result cache, byte-identical to the plain request — instead of
// tripping the uncached filtered expansion.
func TestDegenerateFilterNormalizedToUnfiltered(t *testing.T) {
	s, ts := newTestServer(t, 400, 2, Config{CacheBytes: 1 << 20})
	w := []float64{0.7, 0.3}

	read := func(req TopNRequest) TopNResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/topn", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out TopNResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	plain := read(TopNRequest{Weights: w, N: 8})
	base := s.cache.Counters()
	for _, req := range []TopNRequest{
		{Weights: w, N: 8, Ranges: []RangeJSON{}},
		{Weights: w, N: 8, Ranges: []RangeJSON{{Attr: 0}, {Attr: 1}}}, // all-unbounded
	} {
		got := read(req)
		if len(got.Results) != len(plain.Results) {
			t.Fatalf("degenerate filter returned %d results, unfiltered %d", len(got.Results), len(plain.Results))
		}
		for i := range plain.Results {
			if got.Results[i] != plain.Results[i] {
				t.Fatalf("degenerate filter diverges at rank %d: %+v vs %+v", i, got.Results[i], plain.Results[i])
			}
		}
	}
	after := s.cache.Counters()
	if after.Hits != base.Hits+2 {
		t.Fatalf("degenerate filters bypassed the cache: hits %d -> %d, want +2", base.Hits, after.Hits)
	}
}

// TestHalfBoundedRanges pins the pointer-bound decoding fix: a range
// with only a lo (or only a hi) constrains one side and leaves the
// other unbounded, rather than decoding the absent side as 0.
func TestHalfBoundedRanges(t *testing.T) {
	s, ts := newTestServer(t, 400, 2, Config{})
	w := []float64{0.6, 0.4}
	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{
		Weights: w, N: 6,
		Ranges: []RangeJSON{{Attr: 0, Lo: Bound(0.5)}}, // [0.5, +inf): 400 under the old decoding
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-bounded range: status %d, want 200", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) == 0 {
		t.Fatal("half-bounded range returned nothing")
	}
	for i, r := range got.Results {
		v, ok := s.Snapshot().Vector(r.ID)
		if !ok {
			t.Fatalf("result %d: id %d not in index", i, r.ID)
		}
		if v[0] < 0.5 {
			t.Fatalf("result %d (id %d) violates lo bound: %v", i, r.ID, v)
		}
	}
}

// TestHealthzLiveReady exercises the liveness/readiness split: live is
// unconditional, ready follows the server's ready bit (flipped off
// during WAL recovery or administrative drain).
func TestHealthzLiveReady(t *testing.T) {
	s, ts := newTestServer(t, 100, 2, Config{})

	get := func(path string) (int, HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := get("/v1/healthz/live"); code != http.StatusOK || !h.OK {
		t.Fatalf("live: status %d ok=%v", code, h.OK)
	}
	if code, h := get("/v1/healthz/ready"); code != http.StatusOK || !h.Ready {
		t.Fatalf("ready: status %d ready=%v", code, h.Ready)
	}
	if code, h := get("/v1/healthz"); code != http.StatusOK || !h.Ready {
		t.Fatalf("healthz: status %d ready=%v", code, h.Ready)
	}

	s.SetReady(false)
	if code, _ := get("/v1/healthz/live"); code != http.StatusOK {
		t.Fatalf("live while not ready: status %d, want 200", code)
	}
	if code, h := get("/v1/healthz/ready"); code != http.StatusServiceUnavailable || h.Ready {
		t.Fatalf("ready while not ready: status %d ready=%v, want 503 false", code, h.Ready)
	}
	// Historical shape: plain healthz stays 200 with the bit exposed.
	if code, h := get("/v1/healthz"); code != http.StatusOK || h.Ready {
		t.Fatalf("healthz while not ready: status %d ready=%v, want 200 false", code, h.Ready)
	}
	s.SetReady(true)
	if code, _ := get("/v1/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready after restore: status %d", code)
	}
}

// TestDeleteMissingOK exercises the broadcast-delete mode: IDs the
// server does not hold are skipped (and deduplicated), Applied reports
// the true removal count, and held IDs are really gone.
func TestDeleteMissingOK(t *testing.T) {
	s, ts := newTestServer(t, 100, 2, Config{})

	resp := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{
		IDs:       []uint64{1, 2, 99999, 2, 100000}, // 2 held (one duplicated), 2 missing
		MissingOK: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var mr MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 2 {
		t.Fatalf("applied %d, want 2", mr.Applied)
	}
	snap := s.Snapshot()
	for _, id := range []uint64{1, 2} {
		if _, ok := snap.LayerOf(id); ok {
			t.Fatalf("id %d still present after missing-ok delete", id)
		}
	}
	if snap.Len() != 98 {
		t.Fatalf("len %d, want 98", snap.Len())
	}

	// Without the flag, the same shape fails atomically like it always
	// has.
	resp2 := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{IDs: []uint64{3, 99999}})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("strict delete with missing id: status %d, want 404", resp2.StatusCode)
	}
	if _, ok := s.Snapshot().LayerOf(3); !ok {
		t.Fatal("strict delete was not atomic: id 3 removed despite 404")
	}

	// All-missing with the flag: a clean no-op.
	resp3 := postJSON(t, ts.URL+"/v1/delete", DeleteRequest{IDs: []uint64{99999}, MissingOK: true})
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("all-missing delete: status %d", resp3.StatusCode)
	}
	var mr3 MutateResponse
	if err := json.NewDecoder(resp3.Body).Decode(&mr3); err != nil {
		t.Fatal(err)
	}
	if mr3.Applied != 0 {
		t.Fatalf("all-missing applied %d, want 0", mr3.Applied)
	}
}

// TestDeleteIfPresentAPI covers the Go-level entry the coordinator
// uses, including the concurrent-submit path.
func TestDeleteIfPresentAPI(t *testing.T) {
	s, _ := newTestServer(t, 50, 2, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	applied, err := s.DeleteIfPresent(ctx, []uint64{5, 6, 7, 12345})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d, want 3", applied)
	}
	applied, err = s.DeleteIfPresent(ctx, []uint64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("re-delete applied %d, want 0", applied)
	}
}
