package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func buildIndex(t testing.TB, n, d int, seed int64) *core.Index {
	t.Helper()
	pts := workload.Points(workload.Gaussian, n, d, seed)
	recs := make([]core.Record, n)
	for i, p := range pts {
		recs[i] = core.Record{ID: uint64(i + 1), Vector: p}
	}
	ix, err := core.Build(recs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func newTestServer(t testing.TB, n, d int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(buildIndex(t, n, d, int64(n+d)), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTopNEndpointMatchesIndex(t *testing.T) {
	s, ts := newTestServer(t, 500, 3, Config{})
	w := []float64{0.5, 0.3, 0.2}

	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: w, N: 10})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := s.Snapshot().TopN(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want))
	}
	for i, r := range got.Results {
		if r.ID != want[i].ID || r.Score != want[i].Score || r.Layer != want[i].Layer {
			t.Fatalf("result %d: got %+v want %+v", i, r, want[i])
		}
	}
	if got.Stats.RecordsEvaluated != wantStats.RecordsEvaluated || got.Stats.LayersAccessed != wantStats.LayersAccessed {
		t.Fatalf("stats mismatch: %+v vs %+v", got.Stats, wantStats)
	}
}

func TestTopNBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 200, 2, Config{})
	for _, tc := range []struct {
		name   string
		body   string
		status int
	}{
		{"wrong dims", `{"weights":[1,2,3],"n":5}`, http.StatusBadRequest},
		{"zero n", `{"weights":[1,2],"n":0}`, http.StatusBadRequest},
		{"garbage", `{nope`, http.StatusBadRequest},
		{"unknown field", `{"weights":[1,2],"n":5,"frobnicate":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/topn", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

func TestSearchStreamsInRankOrder(t *testing.T) {
	s, ts := newTestServer(t, 800, 2, Config{})
	resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Weights: []float64{0.7, 0.3}, Limit: 40})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var results []ResultJSON
	var trailer *SearchTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			trailer = &SearchTrailer{}
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var r ResultJSON
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 40 {
		t.Fatalf("got %d results, want 40", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatalf("rank order violated at %d: %v after %v", i, results[i], results[i-1])
		}
	}
	if trailer == nil || !trailer.Done {
		t.Fatal("missing completion trailer")
	}
	if trailer.Stats.LayersAccessed == 0 || trailer.Stats.LayersAccessed > 40 {
		t.Fatalf("implausible layers accessed: %d", trailer.Stats.LayersAccessed)
	}
	// Wire results must match a direct progressive search.
	sr := s.Snapshot().NewSearcher([]float64{0.7, 0.3}, 40)
	for i := 0; ; i++ {
		res, ok := sr.Next()
		if !ok {
			break
		}
		if results[i].ID != res.ID || results[i].Score != res.Score {
			t.Fatalf("result %d: wire %+v, direct %+v", i, results[i], res)
		}
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 300, 2, Config{})

	// A record that dominates every Gaussian point.
	ins := InsertRequest{Records: []RecordJSON{{ID: 99999, Vector: []float64{100, 100}}}}
	resp := postJSON(t, ts.URL+"/v1/insert", ins)
	var mr MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Len != 301 {
		t.Fatalf("insert: status %d, len %d", resp.StatusCode, mr.Len)
	}

	// Read-your-writes: the insert reply arrives after the snapshot swap.
	resp = postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 1})
	var tr TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tr.Results) != 1 || tr.Results[0].ID != 99999 {
		t.Fatalf("inserted record not on top: %+v", tr.Results)
	}

	// Duplicate insert conflicts.
	resp = postJSON(t, ts.URL+"/v1/insert", ins)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d, want 409", resp.StatusCode)
	}

	// Delete it again.
	resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{IDs: []uint64{99999}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 1})
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tr.Results) != 1 || tr.Results[0].ID == 99999 {
		t.Fatalf("deleted record still on top: %+v", tr.Results)
	}

	// Unknown ID 404s without applying anything.
	resp = postJSON(t, ts.URL+"/v1/delete", DeleteRequest{IDs: []uint64{424242}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown delete: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, 250, 3, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.OK || h.Records != 250 || h.Dim != 3 || h.Layers == 0 {
		t.Fatalf("healthz: %+v", h)
	}

	postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 0, 0}, N: 5}).Body.Close()

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m["queries_served"].(float64) < 1 {
		t.Fatalf("queries_served not counted: %v", m["queries_served"])
	}
	if m["records_evaluated"].(float64) <= 0 {
		t.Fatalf("records_evaluated not counted: %v", m["records_evaluated"])
	}
	lat, ok := m["topn_latency_ms"].(map[string]any)
	if !ok || lat["count"].(float64) < 1 {
		t.Fatalf("latency histogram missing: %v", m["topn_latency_ms"])
	}
}

func TestAdmissionLimiter(t *testing.T) {
	s, ts := newTestServer(t, 200, 2, Config{MaxInFlight: 2})
	// Occupy both slots, then every query endpoint must shed load.
	if !s.admit() || !s.admit() {
		t.Fatal("could not occupy admission slots")
	}
	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("topn under saturation: status %d, want 429", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/search", SearchRequest{Weights: []float64{1, 1}, Limit: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("search under saturation: status %d, want 429", resp.StatusCode)
	}
	if got := s.metrics.queriesRejected.Value(); got != 2 {
		t.Fatalf("queries_rejected = %d, want 2", got)
	}
	s.release()
	resp = postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topn after release: status %d", resp.StatusCode)
	}
	s.release()
}

// cancelAfterWriter cancels the request context once a given number of
// NDJSON lines has been written, simulating a client that consumed a
// prefix of a progressive stream and hung up.
type cancelAfterWriter struct {
	header http.Header
	lines  int
	after  int
	cancel context.CancelFunc
}

func (w *cancelAfterWriter) Header() http.Header { return w.header }
func (w *cancelAfterWriter) WriteHeader(int)     {}
func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.lines += bytes.Count(p, []byte("\n"))
	if w.lines >= w.after {
		w.cancel()
	}
	return len(p), nil
}

// TestSearchCancelStopsConsumingLayers is the acceptance check: an
// abandoned /v1/search stream must stop evaluating layers, observable
// through the server's Stats counters.
func TestSearchCancelStopsConsumingLayers(t *testing.T) {
	const n = 4000
	ix := buildIndex(t, n, 2, 99)
	if ix.NumLayers() < 10 {
		t.Fatalf("want a deep index, got %d layers", ix.NumLayers())
	}
	s := New(ix, Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(SearchRequest{Weights: []float64{0.6, 0.4}, Limit: 0})
	req := httptest.NewRequest("POST", "/v1/search", bytes.NewReader(body)).WithContext(ctx)
	w := &cancelAfterWriter{header: make(http.Header), after: 2, cancel: cancel}
	s.handleSearch(w, req)

	if got := s.metrics.searchCancelled.Value(); got != 1 {
		t.Fatalf("search_cancelled = %d, want 1", got)
	}
	rec := s.metrics.recordsEvaluated.Value()
	lay := s.metrics.layersAccessed.Value()
	if rec >= n/2 {
		t.Fatalf("cancelled stream evaluated %d of %d records — did not stop", rec, n)
	}
	if lay == 0 || lay > 6 {
		t.Fatalf("cancelled stream accessed %d layers, want a small prefix", lay)
	}
}

func TestCloseRejectsFurtherMutations(t *testing.T) {
	s := New(buildIndex(t, 100, 2, 3), Config{})
	ctx := context.Background()
	if err := s.Insert(ctx, []core.Record{{ID: 5000, Vector: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(ctx, []core.Record{{ID: 5001, Vector: []float64{1, 2}}}); err != ErrClosed {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Snapshots outlive Close.
	if _, _, err := s.Snapshot().TopN([]float64{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopNHandler(b *testing.B) {
	s := New(buildIndex(b, 5000, 3, 42), Config{})
	defer s.Close(context.Background())
	h := s.Handler()
	body, _ := json.Marshal(TopNRequest{Weights: []float64{0.5, 0.3, 0.2}, N: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/topn", bytes.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
}

// readSearchStream decodes an NDJSON /v1/search response into its
// result lines and trailer.
func readSearchStream(t *testing.T, resp *http.Response) ([]ResultJSON, *SearchTrailer) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	var results []ResultJSON
	var trailer *SearchTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			trailer = &SearchTrailer{}
			if err := json.Unmarshal(line, trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var r ResultJSON
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	return results, trailer
}

// TestApplyPartialBatchFailure: when one op in a coalesced batch fails,
// the published snapshot must reflect exactly the successful ops —
// never a torn clone — and every caller must get its own verdict.
func TestApplyPartialBatchFailure(t *testing.T) {
	s := New(buildIndex(t, 100, 2, 7), Config{})
	defer s.Close(context.Background())

	okIns := op{insert: []core.Record{{ID: 9001, Vector: []float64{50, 50}}}, reply: make(chan opResult, 1)}
	// Fails validation via the intra-batch duplicate check; any error
	// forces the discard-and-replay path in apply().
	badIns := op{insert: []core.Record{
		{ID: 9002, Vector: []float64{1, 1}},
		{ID: 9002, Vector: []float64{2, 2}},
	}, reply: make(chan opResult, 1)}
	okDel := op{del: []uint64{1}, reply: make(chan opResult, 1)}
	badDel := op{del: []uint64{424242}, reply: make(chan opResult, 1)}

	s.apply([]op{okIns, badIns, okDel, badDel})

	if res := <-okIns.reply; res.err != nil {
		t.Fatalf("good insert failed: %v", res.err)
	}
	if res := <-badIns.reply; res.err == nil {
		t.Fatal("intra-batch duplicate insert succeeded")
	}
	if res := <-okDel.reply; res.err != nil {
		t.Fatalf("good delete failed: %v", res.err)
	}
	if res := <-badDel.reply; res.err == nil {
		t.Fatal("unknown-ID delete succeeded")
	}

	snap := s.Snapshot()
	if snap.Len() != 100 { // 100 seed + 1 insert - 1 delete
		t.Fatalf("Len = %d, want 100", snap.Len())
	}
	count := map[uint64]int{}
	for _, r := range snap.Records() {
		count[r.ID]++
	}
	if count[9001] != 1 {
		t.Errorf("inserted ID 9001 appears %d times, want 1", count[9001])
	}
	if count[9002] != 0 {
		t.Errorf("rejected ID 9002 appears %d times, want 0", count[9002])
	}
	if count[1] != 0 {
		t.Errorf("deleted ID 1 appears %d times, want 0", count[1])
	}
	for id, c := range count {
		if c != 1 {
			t.Errorf("ID %d appears %d times", id, c)
		}
	}
	// The surviving snapshot must still answer queries correctly.
	res, _, err := snap.TopN([]float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 9001 {
		t.Fatalf("top-1 = %+v, want the dominating inserted record 9001", res)
	}
}

// TestTopNHugeN: with no MaxResults clamp configured (the documented
// zero value), a client-supplied huge n must not drive a huge upfront
// allocation or a makeslice panic.
func TestTopNHugeN(t *testing.T) {
	_, ts := newTestServer(t, 50, 2, Config{})
	resp := postJSON(t, ts.URL+"/v1/topn", TopNRequest{Weights: []float64{1, 1}, N: 1 << 40})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got TopNResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 50 {
		t.Fatalf("got %d results, want all 50", len(got.Results))
	}
}

// TestSearchTruncatedTrailer: a stream cut short by the server's
// MaxResults cap must say so in the trailer, so clients can tell a
// complete ranking from a capped one.
func TestSearchTruncatedTrailer(t *testing.T) {
	_, ts := newTestServer(t, 30, 2, Config{MaxResults: 10})

	// limit 0 asks for the complete ranking; the cap rewrites it.
	resp := postJSON(t, ts.URL+"/v1/search", SearchRequest{Weights: []float64{1, 1}, Limit: 0})
	results, trailer := readSearchStream(t, resp)
	resp.Body.Close()
	if len(results) != 10 {
		t.Fatalf("got %d results, want capped 10", len(results))
	}
	if trailer == nil || !trailer.Done || !trailer.Truncated {
		t.Fatalf("trailer = %+v, want done and truncated", trailer)
	}

	// An explicit limit within the cap is the client's own choice.
	resp = postJSON(t, ts.URL+"/v1/search", SearchRequest{Weights: []float64{1, 1}, Limit: 5})
	results, trailer = readSearchStream(t, resp)
	resp.Body.Close()
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if trailer == nil || !trailer.Done || trailer.Truncated {
		t.Fatalf("trailer = %+v, want done and not truncated", trailer)
	}

	// A cap larger than the index never truncates.
	_, big := newTestServer(t, 30, 2, Config{MaxResults: 100})
	resp = postJSON(t, big.URL+"/v1/search", SearchRequest{Weights: []float64{1, 1}, Limit: 0})
	results, trailer = readSearchStream(t, resp)
	resp.Body.Close()
	if len(results) != 30 {
		t.Fatalf("got %d results, want all 30", len(results))
	}
	if trailer == nil || !trailer.Done || trailer.Truncated {
		t.Fatalf("trailer = %+v, want done and not truncated", trailer)
	}
}

// TestWeightValidationBadRequests pins the HTTP mapping of
// core.ValidateWeights: malformed weight vectors fail both query
// endpoints with 400 before admission, rather than producing an empty
// stream (the old nil-searcher path) or garbage ranks. Non-finite
// components cannot ride standard JSON (the decoder rejects NaN and
// 1e999 on its own, also a 400), so the cases here are the
// dimension-mismatch class plus the decoder-level rejections.
func TestWeightValidationBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 100, 3, Config{})
	for _, tc := range []struct {
		name, path, body string
	}{
		{"topn short weights", "/v1/topn", `{"weights":[1,2],"n":5}`},
		{"topn empty weights", "/v1/topn", `{"weights":[],"n":5}`},
		{"topn inf literal", "/v1/topn", `{"weights":[1e999,0,0],"n":5}`},
		{"search short weights", "/v1/search", `{"weights":[1,2],"limit":5}`},
		{"search long weights", "/v1/search", `{"weights":[1,2,3,4],"limit":5}`},
		{"search inf literal", "/v1/search", `{"weights":[0,1e999,0],"limit":5}`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
