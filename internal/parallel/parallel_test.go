package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

// TestForCoversRangeOnce checks every index is visited exactly once for
// a spread of sizes and worker counts, including the inline fast path.
func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		for _, workers := range []int{1, 2, 3, 8, 100} {
			for _, minChunk := range []int{1, 16, 4096} {
				hits := make([]int32, n)
				For(n, workers, minChunk, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d workers=%d minChunk=%d: index %d visited %d times", n, workers, minChunk, i, h)
					}
				}
			}
		}
	}
}

// TestForChunksRespectMinChunk asserts small loops do not fork: with
// n < 2*minChunk only one chunk may exist (the inline path).
func TestForChunksRespectMinChunk(t *testing.T) {
	var calls int32
	For(100, 8, 64, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
	if calls != 1 {
		t.Fatalf("100 items with minChunk 64 ran in %d chunks, want 1", calls)
	}
	calls = 0
	For(4096, 8, 1024, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
	if calls < 2 || calls > 4 {
		t.Fatalf("4096 items with minChunk 1024 and 8 workers ran in %d chunks, want 2..4", calls)
	}
}

// TestForDeterministicMergeOrder demonstrates the contract: per-index
// writes then a sequential fold give identical results at any width.
func TestForDeterministicMergeOrder(t *testing.T) {
	const n = 10000
	ref := make([]float64, n)
	For(n, 1, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = float64(i) * 1.5
		}
	})
	for _, workers := range []int{2, 5, 16} {
		got := make([]float64, n)
		For(n, workers, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = float64(i) * 1.5
			}
		})
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}
