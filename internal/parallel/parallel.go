// Package parallel provides the bounded fork-join primitive shared by
// the hull builder and the query scorer. It is deliberately tiny: the
// whole parallelization strategy of this repository is "data-parallel
// scans over disjoint index ranges, merged in input order", which needs
// nothing beyond a chunked parallel for-loop.
//
// Determinism contract: For runs fn over a partition of [0, n) into
// contiguous chunks. Callers must write only to per-index slots (or
// otherwise disjoint state), never to shared accumulators; the merge —
// whatever order-sensitive folding the caller performs afterwards —
// happens sequentially over the per-index results in input order.
// Under that discipline the outcome is bit-identical for every worker
// count, which is what lets a seeded, joggle-deterministic hull build
// replay identically whether it ran on one core or sixty-four.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob to a concrete worker count:
// n >= 1 means exactly n workers, anything else (0 or negative, the
// knob's "automatic" setting) means one worker per available CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For splits [0, n) into at most workers contiguous chunks of at least
// minChunk indexes each and runs fn on every chunk, concurrently when
// more than one chunk results. It returns only after all chunks
// finish. fn must confine its writes to state owned by its own index
// range. When the loop is too small to be worth forking (or workers
// <= 1) fn runs inline on the full range, so sequential and parallel
// callers share one code path and one result.
func For(n, workers, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if maxW := n / minChunk; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
