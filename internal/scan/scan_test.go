package scan

import (
	"testing"

	"repro/internal/workload"
)

func TestTopNBasic(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 2}, {3, 3}, {-1, -1}}
	got, err := TopN(pts, nil, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 3 || got[0].Score != 6 || got[1].ID != 2 || got[1].Score != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestTopNCustomIDs(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	got, err := TopN(pts, []uint64{100, 200}, []float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 200 {
		t.Errorf("ID = %d", got[0].ID)
	}
}

func TestTopNErrors(t *testing.T) {
	if got, err := TopN(nil, nil, []float64{1}, 1); err != nil || got != nil {
		t.Errorf("empty input: %v,%v", got, err)
	}
	pts := [][]float64{{1, 2}}
	if _, err := TopN(pts, nil, []float64{1}, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := TopN(pts, nil, []float64{1, 1}, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTopNMoreThanExists(t *testing.T) {
	pts := workload.Points(workload.Uniform, 10, 2, 1)
	got, err := TopN(pts, nil, []float64{1, 0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Error("not descending")
		}
	}
}

func TestCost(t *testing.T) {
	if c := Cost(12345); c.RecordsEvaluated != 12345 || c.LayersAccessed != 0 {
		t.Errorf("cost = %+v", c)
	}
}
