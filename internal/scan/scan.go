// Package scan implements the baseline the paper evaluates the Onion
// technique against: a full sequential scan with a bounded top-N buffer.
// Its computational cost is always n score evaluations and its I/O cost
// is the whole file read sequentially (the paper fixes it at 8,000 pages
// for the 3D million-record set and 10,000 for 4D, charging no seeks —
// an assumption that favors the scan).
package scan

import (
	"errors"

	"repro/internal/core"
	"repro/internal/topk"
)

// TopN scans all records and returns the n highest weighted sums in
// descending order. ids[i] names record i; a nil ids assigns 1-based
// positions.
func TopN(pts [][]float64, ids []uint64, weights []float64, n int) ([]core.Result, error) {
	if len(pts) == 0 {
		return nil, nil
	}
	if len(weights) != len(pts[0]) {
		return nil, errors.New("scan: weight dimension mismatch")
	}
	if n <= 0 {
		return nil, errors.New("scan: non-positive n")
	}
	best := topk.NewBounded(n)
	for i, p := range pts {
		var s float64
		for j, wj := range weights {
			s += wj * p[j]
		}
		best.Offer(topk.Item{ID: i, Score: s})
	}
	items := best.Descending()
	out := make([]core.Result, len(items))
	for i, it := range items {
		id := uint64(it.ID + 1)
		if ids != nil {
			id = ids[it.ID]
		}
		out[i] = core.Result{ID: id, Score: it.Score, Layer: -1}
	}
	return out, nil
}

// Cost reports the baseline's work for comparison tables: records
// evaluated is always the full cardinality.
func Cost(records int) core.Stats {
	return core.Stats{RecordsEvaluated: records, LayersAccessed: 0}
}
