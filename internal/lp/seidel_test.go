package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/hull"
	"repro/internal/workload"
)

func TestMaximize2DTriangle(t *testing.T) {
	// Triangle x>=0, y>=0, x+y<=1. Maximize x+2y -> (0,1), value 2.
	cons := []Constraint{
		{A: []float64{-1, 0}, B: 0},
		{A: []float64{0, -1}, B: 0},
		{A: []float64{1, 1}, B: 1},
	}
	x, err := Maximize(cons, []float64{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !geom.EqualTol(x, []float64{0, 1}, 1e-6) {
		t.Errorf("optimum = %v, want (0,1)", x)
	}
	v, err := MaximizeValue(cons, []float64{1, 2}, Options{})
	if err != nil || math.Abs(v-2) > 1e-6 {
		t.Errorf("value = %v,%v", v, err)
	}
}

func TestMaximize3DBox(t *testing.T) {
	// Unit cube [0,1]^3, maximize x+y+z -> 3 at (1,1,1).
	var cons []Constraint
	for i := 0; i < 3; i++ {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		lo[i], hi[i] = -1, 1
		cons = append(cons, Constraint{A: lo, B: 0}, Constraint{A: hi, B: 1})
	}
	x, err := Maximize(cons, []float64{1, 1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !geom.EqualTol(x, []float64{1, 1, 1}, 1e-6) {
		t.Errorf("optimum = %v", x)
	}
}

func TestInfeasible(t *testing.T) {
	cons := []Constraint{
		{A: []float64{1, 0}, B: 0},   // x <= 0
		{A: []float64{-1, 0}, B: -1}, // x >= 1
	}
	if _, err := Maximize(cons, []float64{1, 0}, Options{}); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// A constant contradiction: 0·x <= -1.
	cons2 := []Constraint{{A: []float64{0}, B: -1}}
	if _, err := Maximize(cons2, []float64{1}, Options{}); err != ErrInfeasible {
		t.Errorf("1D constant contradiction: %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	// Only x >= 0 in 2D; maximize x is unbounded.
	cons := []Constraint{{A: []float64{-1, 0}, B: 0}}
	if _, err := Maximize(cons, []float64{1, 0}, Options{}); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestOneDimensional(t *testing.T) {
	cons := []Constraint{
		{A: []float64{1}, B: 5},   // x <= 5
		{A: []float64{-1}, B: -2}, // x >= 2
	}
	x, err := Maximize(cons, []float64{1}, Options{})
	if err != nil || math.Abs(x[0]-5) > 1e-9 {
		t.Errorf("max = %v,%v", x, err)
	}
	x, err = Maximize(cons, []float64{-3}, Options{})
	if err != nil || math.Abs(x[0]-2) > 1e-9 {
		t.Errorf("min = %v,%v", x, err)
	}
}

// TestLPAgreesWithHullVertices is the oracle the package exists for:
// maximizing over a hull's facet planes must match the best vertex.
func TestLPAgreesWithHullVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, d := range []int{2, 3, 4} {
		pts := workload.Points(workload.Gaussian, 200, d, int64(d))
		h, err := hull.Compute(pts, nil, hull.Options{})
		if err != nil {
			t.Fatal(err)
		}
		planes, ok := h.FacetPlanes()
		if !ok {
			t.Fatalf("d=%d: no facet planes", d)
		}
		cons := make([]Constraint, len(planes))
		for i, p := range planes {
			cons[i] = Constraint{A: p.Normal, B: p.Offset}
		}
		for trial := 0; trial < 20; trial++ {
			c := make([]float64, d)
			for j := range c {
				c[j] = rng.NormFloat64()
			}
			lpVal, err := MaximizeValue(cons, c, Options{Seed: int64(trial)})
			if err != nil {
				t.Fatalf("d=%d trial=%d: %v", d, trial, err)
			}
			best := math.Inf(-1)
			for _, v := range h.Vertices {
				if s := geom.Dot(c, pts[v]); s > best {
					best = s
				}
			}
			if math.Abs(lpVal-best) > 1e-6*(math.Abs(best)+1) {
				t.Errorf("d=%d trial=%d: LP %v != best vertex %v", d, trial, lpVal, best)
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cons := []Constraint{
		{A: []float64{1, 1}, B: 2},
		{A: []float64{-1, 0}, B: 0},
		{A: []float64{0, -1}, B: 0},
	}
	a, err1 := Maximize(cons, []float64{3, 1}, Options{Seed: 5})
	b, err2 := Maximize(cons, []float64{3, 1}, Options{Seed: 5})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !geom.Equal(a, b) {
		t.Errorf("same seed, different answers: %v vs %v", a, b)
	}
}

func TestEmptyObjective(t *testing.T) {
	if _, err := Maximize(nil, nil, Options{}); err == nil {
		t.Error("empty objective accepted")
	}
}
