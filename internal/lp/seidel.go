// Package lp implements Seidel's randomized incremental linear
// programming algorithm (paper reference [13]: "Linear programming and
// convex hulls made easy"), expected O(n) time for fixed dimension.
//
// The paper's Section 2 positions classical LP as the cornerstone the
// Onion technique builds on: a linear optimization query over a convex
// region attains its optimum at a vertex. This package provides that
// classical primitive both for completeness and as an independent
// correctness oracle: maximizing c·x over an Onion layer's facet
// hyperplanes must yield the same value as scanning the layer's
// vertices.
package lp

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Constraint is the half-space A·x <= B.
type Constraint struct {
	A []float64
	B float64
}

// ErrInfeasible is returned when the constraint set is empty.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the optimum exceeds the bounding box,
// i.e. the LP is unbounded (or bounded only beyond Options.Bound).
var ErrUnbounded = errors.New("lp: unbounded within the bounding box")

// Options tunes the solver.
type Options struct {
	// Bound is the half-width M of the implicit bounding box |x_i| <= M
	// that makes every subproblem bounded. Zero selects 1e9.
	Bound float64
	// Seed feeds the constraint shuffle.
	Seed int64
	// Eps is the violation tolerance. Zero selects 1e-9.
	Eps float64
}

// Maximize solves max c·x subject to the constraints (plus the implicit
// bounding box). It returns an optimal point; if the optimum sits on the
// bounding box the problem is reported unbounded.
func Maximize(cons []Constraint, c []float64, opt Options) ([]float64, error) {
	d := len(c)
	if d == 0 {
		return nil, errors.New("lp: empty objective")
	}
	m := opt.Bound
	if m == 0 {
		m = 1e9
	}
	eps := opt.Eps
	if eps == 0 {
		eps = 1e-9
	}
	shuffled := make([]Constraint, len(cons))
	copy(shuffled, cons)
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	x, err := solve(shuffled, c, m, eps)
	if err != nil {
		return nil, err
	}
	for _, xi := range x {
		if math.Abs(xi) >= m*(1-1e-6) {
			return x, ErrUnbounded
		}
	}
	return x, nil
}

// solve is the recursive core: maximize c·x over cons within |x_i|<=m.
func solve(cons []Constraint, c []float64, m, eps float64) ([]float64, error) {
	d := len(c)
	if d == 1 {
		lo, hi := -m, m
		for _, h := range cons {
			a, b := h.A[0], h.B
			switch {
			case a > eps:
				if v := b / a; v < hi {
					hi = v
				}
			case a < -eps:
				if v := b / a; v > lo {
					lo = v
				}
			default:
				if b < -eps {
					return nil, ErrInfeasible
				}
			}
		}
		if lo > hi+eps {
			return nil, ErrInfeasible
		}
		if c[0] >= 0 {
			return []float64{hi}, nil
		}
		return []float64{lo}, nil
	}

	// Start at the bounding-box corner maximizing c.
	x := make([]float64, d)
	for i, ci := range c {
		if ci >= 0 {
			x[i] = m
		} else {
			x[i] = -m
		}
	}
	for i, h := range cons {
		if geom.Dot(h.A, x) <= h.B+eps {
			continue // still satisfied; optimum unchanged
		}
		// The optimum of the first i+1 constraints lies on h's boundary:
		// recurse in d-1 dimensions on that hyperplane.
		sub, err := onBoundary(h, cons[:i], c, m, eps)
		if err != nil {
			return nil, err
		}
		x = sub
	}
	return x, nil
}

// onBoundary maximizes c·x over prior constraints restricted to the
// hyperplane A·x = B of h.
func onBoundary(h Constraint, prior []Constraint, c []float64, m, eps float64) ([]float64, error) {
	d := len(c)
	n := geom.Clone(h.A)
	nn := geom.Normalize(n)
	if nn == 0 {
		if h.B < -eps {
			return nil, ErrInfeasible
		}
		return nil, errors.New("lp: zero constraint normal")
	}
	// p0: the point of the hyperplane closest to the origin.
	p0 := geom.Scale(nil, h.B/nn, n)
	// Orthonormal basis of the hyperplane: complete n to a full basis by
	// Gram–Schmidt over the coordinate axes.
	basis := make([][]float64, 0, d-1)
	for axis := 0; axis < d && len(basis) < d-1; axis++ {
		v := make([]float64, d)
		v[axis] = 1
		geom.AXPY(v, v, -geom.Dot(n, v), n)
		for _, e := range basis {
			geom.AXPY(v, v, -geom.Dot(e, v), e)
		}
		if geom.Normalize(v) > 1e-12 {
			basis = append(basis, v)
		}
	}
	if len(basis) != d-1 {
		return nil, errors.New("lp: failed to build hyperplane basis")
	}
	// Transform constraints and objective into y-coordinates
	// (x = p0 + Σ y_k basis_k).
	subCons := make([]Constraint, 0, len(prior))
	for _, pc := range prior {
		a := make([]float64, d-1)
		for k, e := range basis {
			a[k] = geom.Dot(pc.A, e)
		}
		subCons = append(subCons, Constraint{A: a, B: pc.B - geom.Dot(pc.A, p0)})
	}
	subC := make([]float64, d-1)
	for k, e := range basis {
		subC[k] = geom.Dot(c, e)
	}
	// A box of half-width m in x-space is contained in a y-ball of
	// radius m*sqrt(d)+|p0|; use that as the sub-box half-width.
	subM := m*math.Sqrt(float64(d)) + geom.Norm(p0)
	y, err := solve(subCons, subC, subM, eps)
	if err != nil {
		return nil, err
	}
	x := geom.Clone(p0)
	for k, e := range basis {
		geom.AXPY(x, x, y[k], e)
	}
	return x, nil
}

// MaximizeValue is a convenience wrapper returning just the optimal
// objective value.
func MaximizeValue(cons []Constraint, c []float64, opt Options) (float64, error) {
	x, err := Maximize(cons, c, opt)
	if err != nil {
		return 0, err
	}
	return geom.Dot(c, x), nil
}
