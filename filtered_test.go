package onion

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func TestFacadeFilteredQueries(t *testing.T) {
	recs, pts := testRecords(workload.Uniform, 600, 2, 21)
	ix, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.5, 0.5}

	// Predicate filter.
	res, stats, err := ix.TopNFiltered(w, 5, func(id uint64, _ []float64) bool { return id%3 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for i, p := range pts {
		if uint64(i+1)%3 == 0 {
			want = append(want, geom.Dot(w, p))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.ID%3 != 0 {
			t.Errorf("rank %d violates predicate: id %d", i, r.ID)
		}
		if diff := r.Score - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rank %d: %v want %v", i, r.Score, want[i])
		}
	}
	if stats.RecordsEvaluated == 0 {
		t.Error("stats missing")
	}

	// Range filter.
	rres, _, err := ix.TopNInRanges(w, 4, map[int][2]float64{1: {-0.25, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rres {
		v := recs[r.ID-1].Vector
		if v[1] < -0.25 || v[1] > 0.25 {
			t.Errorf("rank %d out of range: %v", i, v)
		}
	}
}

func TestFacadeDeleteBatch(t *testing.T) {
	recs, _ := testRecords(workload.Gaussian, 200, 2, 22)
	ix, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Accelerate()
	if err := ix.DeleteBatch([]uint64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 195 {
		t.Fatalf("len = %d", ix.Len())
	}
	if ix.Accelerated() {
		t.Error("acceleration survived batch delete")
	}
	if err := ix.DeleteBatch([]uint64{99999}); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestFacadeHierarchyPersistence(t *testing.T) {
	groups := map[string][]Record{
		"a": {{ID: 1, Vector: []float64{5, 0}}, {ID: 2, Vector: []float64{6, 1}}, {ID: 3, Vector: []float64{5, 2}}},
		"b": {{ID: 4, Vector: []float64{0, 5}}, {ID: 5, Vector: []float64{1, 6}}, {ID: 6, Vector: []float64{2, 5}}},
	}
	h, err := BuildHierarchy(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/h"
	if err := h.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHierarchy(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := h.TopN([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := back.TopN([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	if _, err := LoadHierarchy(t.TempDir() + "/missing"); err == nil {
		t.Error("missing hierarchy loaded")
	}
}

func TestFacadeLoadRoundTrip(t *testing.T) {
	recs, _ := testRecords(workload.Gaussian, 300, 3, 23)
	ix, err := Build(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.onion"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLayers() != ix.NumLayers() || back.Len() != ix.Len() {
		t.Fatalf("shape: %d/%d vs %d/%d", back.NumLayers(), back.Len(), ix.NumLayers(), ix.Len())
	}
	// Loaded index is mutable.
	if err := back.Insert(Record{ID: 9999, Vector: []float64{9, 9, 9}}); err != nil {
		t.Fatal(err)
	}
	top, err := back.TopN([]float64{1, 1, 1}, 1)
	if err != nil || top[0].ID != 9999 {
		t.Fatalf("top after insert: %v %v", top, err)
	}
	if _, err := Load(t.TempDir() + "/none.onion"); err == nil {
		t.Error("missing file loaded")
	}
}
